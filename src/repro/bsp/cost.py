"""BSP cost objects: per-superstep records and program totals.

The execution time of a BSP program of ``S`` supersteps is the sum of
three terms (section 2)::

    W + H * g + S * l
    W = sum_s max_i w_i(s)        (computation)
    H = sum_s max_i h_i(s)        (communication)

:class:`SuperstepCost` captures one superstep, :class:`BspCost` the whole
program; both know how to evaluate themselves against a
:class:`~repro.bsp.params.BspParams` and to render a trace table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.bsp.network import HRelation
from repro.bsp.params import BspParams


@dataclass(frozen=True)
class SuperstepCost:
    """One superstep: per-process work and the realized h-relation.

    ``synchronized`` is False only for a trailing purely-local phase after
    the last barrier, which contributes computation time but neither
    communication nor an ``l`` term.

    ``measured`` optionally carries per-process wall-clock seconds from
    the executor layer (:meth:`~repro.bsp.machine.BspMachine.run_superstep`).
    It is excluded from equality and hashing (``compare=False``): the
    abstract cost decomposition is deterministic and backend-independent,
    and the differential conformance harness relies on comparing it
    bit-for-bit across backends, while measured time naturally varies.
    """

    work: Tuple[float, ...]
    relation: Optional[HRelation] = None
    synchronized: bool = True
    label: str = ""
    measured: Optional[Tuple[float, ...]] = field(default=None, compare=False)

    @property
    def w_max(self) -> float:
        return max(self.work, default=0.0)

    @property
    def measured_max(self) -> float:
        """Slowest process's measured compute seconds (0.0 if unmeasured)."""
        return max(self.measured, default=0.0) if self.measured else 0.0

    @property
    def h(self) -> int:
        return self.relation.h if self.relation is not None else 0

    def time(self, params: BspParams) -> float:
        if not self.synchronized:
            return self.w_max
        return params.superstep_time(self.w_max, self.h)


@dataclass
class BspCost:
    """The cost of a whole program: a sequence of superstep records."""

    p: int
    supersteps: List[SuperstepCost] = field(default_factory=list)

    @property
    def W(self) -> float:
        """Total computation: ``sum_s max_i w_i``."""
        return sum(step.w_max for step in self.supersteps)

    @property
    def H(self) -> int:
        """Total communication arity: ``sum_s max_i h_i``."""
        return sum(step.h for step in self.supersteps)

    @property
    def S(self) -> int:
        """Number of synchronized supersteps (barriers executed)."""
        return sum(1 for step in self.supersteps if step.synchronized)

    @property
    def measured_seconds(self) -> float:
        """Total measured wall-clock compute, BSP-style: the sum over
        supersteps of the slowest process's seconds (the wall-clock
        analogue of ``W``; 0.0 when nothing was measured)."""
        return sum(step.measured_max for step in self.supersteps)

    def total(self, params: BspParams) -> float:
        """``W + H*g + S*l`` (equal to the sum of superstep times)."""
        return self.W + self.H * params.g + self.S * params.l

    def check_decomposition(self, params: BspParams) -> bool:
        """Consistency: summing per-superstep times equals the formula.

        The two sums associate floating-point additions differently, so
        the comparison must be *relative*: an absolute ``1e-9`` tolerance
        spuriously fails once ``W``/``H`` totals grow past ~1e7, where a
        single rounding step already exceeds it.
        """
        by_steps = sum(step.time(params) for step in self.supersteps)
        return math.isclose(by_steps, self.total(params), rel_tol=1e-9, abs_tol=1e-9)

    def render(self, params: Optional[BspParams] = None) -> str:
        """A human-readable superstep table.

        When any superstep carries backend wall-clock timings
        (``SuperstepCost.measured``) a ``measured ms`` column appears
        next to the modelled ``max w``, so modelled versus measured cost
        is visible per superstep without a full trace.
        """
        lines = [f"BSP cost over p={self.p} processes:"]
        measured = any(step.measured for step in self.supersteps)
        header = f"  {'step':>4}  {'max w':>10}  {'h':>8}  {'sync':>5}"
        if measured:
            header += f"  {'measured ms':>12}"
        lines.append(header + "  label")
        for number, step in enumerate(self.supersteps):
            row = (
                f"  {number:>4}  {step.w_max:>10.1f}  {step.h:>8}"
                f"  {'yes' if step.synchronized else 'no':>5}"
            )
            if measured:
                shown = (
                    f"{step.measured_max * 1e3:.3f}" if step.measured else "-"
                )
                row += f"  {shown:>12}"
            lines.append(row + f"  {step.label}")
        lines.append(f"  W = {self.W:.1f}, H = {self.H}, S = {self.S}")
        if self.measured_seconds:
            lines.append(
                f"  measured compute = {self.measured_seconds * 1e3:.2f} ms "
                "(wall clock, max over processes per superstep)"
            )
        if params is not None:
            lines.append(
                f"  total = W + H*g + S*l = {self.total(params):.1f}"
                f"  ({params.describe()})"
            )
        return "\n".join(lines)
