"""Deterministic fault injection and retry policy for the BSP substrate.

The simulator's soundness story ("well-typed programs don't go wrong")
is only as good as the machine's *error paths*: a worker that dies, a
task that never returns, a message that gets dropped on the wire, a
process pool that breaks mid-superstep.  This module makes every one of
those failure modes **injectable, deterministic and recoverable**:

* :class:`FaultPlan` — a seed-driven plan that decides, reproducibly,
  which faults fire at which injection sites.  Sites are visited in the
  coordinator in program order, so the *same* plan (same seed, same
  rates) makes the *same* decisions on every execution backend — which
  is what lets the chaos conformance sweep demand bit-identical values
  and costs across seq/thread/process under a survivable plan;
* :class:`RetryPolicy` — bounded retry with exponential backoff and
  deterministic jitter for transient (injected or genuine) faults;
* :class:`SuperstepFault` — the typed failure raised when a superstep
  cannot be completed, carrying a per-process outcome table.  The
  machine guarantees the raise is **atomic**: values, cost rows and
  mailboxes are exactly what they were before the failing phase.

The fault kinds:

========  ======================================================
kind      injected as
========  ======================================================
crash     a per-process task raises :class:`WorkerCrash`
timeout   a per-process task exceeds its budget (:class:`TaskTimeout`)
drop      a message in :meth:`~repro.bsp.machine.BspMachine.exchange`
          is lost in transit
dup       a message is delivered twice (detected, redelivered)
corrupt   a message arrives damaged (detected by checksum)
pool      the executor's worker pool breaks (:class:`BrokenPool`)
========  ======================================================

Message faults are *detected* faults, as they would be in a real BSP
runtime with acknowledgements and checksums: a drop/dup/corrupt never
silently lands a wrong value, it fails the delivery attempt, which the
machine then retries (policy on) or aborts atomically (policy off or
exhausted).  This is what keeps survivable plans observationally
invisible — the whole point of the transactional superstep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.lang.errors import ReproError

#: The injectable fault kinds, in documentation order.
FAULT_KINDS = ("crash", "timeout", "drop", "dup", "corrupt", "pool")

#: Fault kinds injected into per-process tasks (computation phase).
TASK_FAULT_KINDS = ("crash", "timeout")

#: Fault kinds injected into message deliveries (communication phase).
MESSAGE_FAULT_KINDS = ("drop", "dup", "corrupt")


class BspFaultError(ReproError):
    """Base of every fault-layer failure (transient *and* final)."""


class TransientFault(BspFaultError):
    """A fault that a retry may recover from (injected or genuine)."""


class WorkerCrash(TransientFault):
    """An (injected) worker death during a per-process task."""


class TaskTimeout(TransientFault):
    """An (injected) per-task timeout: the task exceeded its budget."""


class MessageFault(TransientFault):
    """A detected message-level fault (drop, duplication, corruption)."""


class BrokenPool(TransientFault):
    """An (injected) broken worker pool; the pool is recycled on retry."""


class BackendUnavailableError(BspFaultError):
    """A known backend whose pool cannot be started in this environment."""


class FaultSpecError(BspFaultError):
    """A malformed ``--faults`` / ``:faults`` specification string."""


@dataclass(frozen=True)
class ProcOutcome:
    """One row of a :class:`SuperstepFault` table: what finally happened
    to one process (or one ``src->dst`` message) of the failing phase."""

    site: str
    status: str  # "ok", "crash", "timeout", "drop", "dup", "corrupt",
    #              "pool", "error", "pending"
    detail: str = ""

    def render(self) -> str:
        text = f"{self.site:>10}  {self.status}"
        return f"{text}: {self.detail}" if self.detail else text


class SuperstepFault(BspFaultError):
    """A superstep phase that could not be completed.

    Raised **atomically**: the machine's accumulated cost, per-process
    work and mailboxes are exactly what they were before the failing
    phase began (``state_restored`` records the machine's own check).
    ``table`` holds one :class:`ProcOutcome` per process (computation
    phase) or per in-flight message (communication phase).
    """

    def __init__(
        self,
        phase: str,
        label: str,
        attempts: int,
        table: Sequence[ProcOutcome],
        state_restored: bool = True,
    ) -> None:
        self.phase = phase
        self.label = label
        self.attempts = attempts
        self.table = tuple(table)
        self.state_restored = state_restored
        failing = [row for row in self.table if row.status not in ("ok", "pending")]
        summary = ", ".join(
            f"{row.site}: {row.status}" for row in failing[:4]
        ) or "no outcome recorded"
        if len(failing) > 4:
            summary += f", ... ({len(failing) - 4} more)"
        super().__init__(
            f"superstep {phase} phase"
            + (f" [{label}]" if label else "")
            + f" failed after {attempts} attempt{'s' if attempts != 1 else ''}"
            + f" ({summary}); machine state rolled back"
        )

    def render(self) -> str:
        """The full outcome table, one line per site."""
        lines = [str(self)]
        for row in self.table:
            lines.append(f"  {row.render()}")
        return "\n".join(lines)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    Attempt ``n`` (1-based) failing with a transient fault is retried
    after ``base_delay * multiplier**(n-1) * (1 + jitter)`` seconds,
    where ``jitter`` is drawn reproducibly from ``jitter_seed`` — two
    machines with the same policy back off identically, so chaos runs
    stay deterministic end to end.  ``base_delay=0`` (the default used
    by the test suites) retries immediately.
    """

    max_attempts: int = 3
    base_delay: float = 0.0
    jitter_seed: int = 0
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0:
            raise ValueError("base_delay must be non-negative")
        if self.multiplier < 1:
            raise ValueError("multiplier must be at least 1")

    def delay(self, attempt: int) -> float:
        """Seconds to sleep after failed attempt ``attempt`` (1-based)."""
        if self.base_delay == 0:
            return 0.0
        jitter = random.Random(self.jitter_seed * 2654435761 + attempt).uniform(
            0.0, 0.5
        )
        return self.base_delay * (self.multiplier ** (attempt - 1)) * (1.0 + jitter)

    def describe(self) -> str:
        return (
            f"retry up to {self.max_attempts} attempts, "
            f"base delay {self.base_delay}s x{self.multiplier} "
            f"(jitter seed {self.jitter_seed})"
        )


@dataclass
class FaultPlan:
    """A reproducible schedule of fault injections.

    Rates are per-site probabilities in ``[0, 1]``: ``crash``/``timeout``
    are drawn once per pending process per computation attempt, ``pool``
    once per computation attempt, and ``drop``/``dup``/``corrupt`` once
    per in-flight message per delivery attempt.  All draws come from one
    ``random.Random(seed)`` stream consumed at machine level in program
    order, so a plan's decisions do not depend on the execution backend.

    A plan is **stateful** (the stream advances); build a fresh plan from
    the same seed to replay the identical fault schedule.
    """

    seed: int = 0
    crash: float = 0.0
    timeout: float = 0.0
    drop: float = 0.0
    dup: float = 0.0
    corrupt: float = 0.0
    pool: float = 0.0
    _rng: random.Random = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            rate = getattr(self, kind)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate {kind}={rate} outside [0, 1]")
        self._rng = random.Random(self.seed)

    def replay(self) -> "FaultPlan":
        """A fresh plan with the same seed and rates (stream rewound)."""
        return FaultPlan(
            seed=self.seed,
            crash=self.crash,
            timeout=self.timeout,
            drop=self.drop,
            dup=self.dup,
            corrupt=self.corrupt,
            pool=self.pool,
        )

    # -- activity tests (fast paths when a class of faults is unarmed) ------

    @property
    def active(self) -> bool:
        return any(getattr(self, kind) > 0.0 for kind in FAULT_KINDS)

    @property
    def task_faults_active(self) -> bool:
        return self.crash > 0.0 or self.timeout > 0.0

    @property
    def message_faults_active(self) -> bool:
        return self.drop > 0.0 or self.dup > 0.0 or self.corrupt > 0.0

    @property
    def pool_faults_active(self) -> bool:
        return self.pool > 0.0

    # -- draws (coordinator-side, deterministic order) ----------------------

    def draw_task_faults(self, procs: Sequence[int]) -> Dict[int, str]:
        """Which of ``procs`` get a crash/timeout injected this attempt.

        Each injection is also recorded as a ``fault`` trace event on the
        owning process's track (:mod:`repro.obs`) carrying the drawn
        outcome — the draws are machine-side and in program order, so the
        events are bit-identical across execution backends.
        """
        injected: Dict[int, str] = {}
        if not self.task_faults_active:
            return injected
        for proc in procs:
            if self.crash > 0.0 and self._rng.random() < self.crash:
                injected[proc] = "crash"
            elif self.timeout > 0.0 and self._rng.random() < self.timeout:
                injected[proc] = "timeout"
        if injected and obs.is_tracing():
            for proc, kind in injected.items():
                obs.event(
                    "fault", obs.process_track(proc), kind=kind, proc=proc
                )
        return injected

    def draw_pool_break(self) -> bool:
        """Does the worker pool break on this computation attempt?"""
        broke = self.pool_faults_active and self._rng.random() < self.pool
        if broke and obs.is_tracing():
            obs.event("fault", obs.MACHINE_TRACK, kind="pool")
        return broke

    def draw_message_faults(
        self, keys: Sequence[Tuple[int, int]]
    ) -> Dict[Tuple[int, int], str]:
        """Which in-flight ``(src, dst)`` messages get injured this
        delivery attempt, and how.  Each injury is recorded as a
        ``fault`` trace event on the *sender's* track (the process that
        owns the failed delivery)."""
        injected: Dict[Tuple[int, int], str] = {}
        if not self.message_faults_active:
            return injected
        for key in keys:
            for kind in MESSAGE_FAULT_KINDS:
                rate = getattr(self, kind)
                if rate > 0.0 and self._rng.random() < rate:
                    injected[key] = kind
                    break
        if injected and obs.is_tracing():
            for (src, dst), kind in injected.items():
                obs.event(
                    "fault",
                    obs.process_track(src),
                    kind=kind,
                    src=src,
                    dst=dst,
                )
        return injected

    def describe(self) -> str:
        rates = ", ".join(
            f"{kind}={getattr(self, kind)}"
            for kind in FAULT_KINDS
            if getattr(self, kind) > 0.0
        )
        return f"seed={self.seed}" + (f", {rates}" if rates else ", no faults armed")


#: Keys accepted by :func:`parse_fault_spec` beyond the fault rates.
_SPEC_POLICY_KEYS = ("attempts", "delay", "jitter", "multiplier")


def parse_fault_spec(spec: str) -> Tuple[FaultPlan, Optional[RetryPolicy]]:
    """Parse a ``--faults`` / ``:faults`` specification string.

    The grammar is a comma-separated ``key=value`` list::

        seed=42,crash=0.1,timeout=0.05,drop=0.05,dup=0.01,corrupt=0.01,
        pool=0.02,attempts=4,delay=0.0,jitter=7,multiplier=2

    ``seed`` and the six fault rates build the :class:`FaultPlan`;
    ``attempts``/``delay``/``jitter``/``multiplier`` build the
    :class:`RetryPolicy` (omitted entirely -> no policy: every injected
    fault is fatal and supersteps abort atomically on the first one).
    Raises :class:`FaultSpecError` on anything malformed.
    """
    plan_kwargs: Dict[str, float] = {}
    policy_kwargs: Dict[str, float] = {}
    seen: List[str] = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        key, separator, value = item.partition("=")
        key = key.strip().lower()
        value = value.strip()
        if not separator or not value:
            raise FaultSpecError(
                f"bad fault spec item {item!r}: expected key=value "
                f"(keys: seed, {', '.join(FAULT_KINDS)}, "
                f"{', '.join(_SPEC_POLICY_KEYS)})"
            )
        if key in seen:
            raise FaultSpecError(f"duplicate key {key!r} in fault spec")
        seen.append(key)
        try:
            if key == "seed":
                plan_kwargs["seed"] = int(value)
            elif key in FAULT_KINDS:
                plan_kwargs[key] = float(value)
            elif key == "attempts":
                policy_kwargs["max_attempts"] = int(value)
            elif key == "delay":
                policy_kwargs["base_delay"] = float(value)
            elif key == "jitter":
                policy_kwargs["jitter_seed"] = int(value)
            elif key == "multiplier":
                policy_kwargs["multiplier"] = float(value)
            else:
                raise FaultSpecError(
                    f"unknown fault spec key {key!r} "
                    f"(keys: seed, {', '.join(FAULT_KINDS)}, "
                    f"{', '.join(_SPEC_POLICY_KEYS)})"
                )
        except ValueError as error:
            raise FaultSpecError(
                f"bad value for {key!r} in fault spec: {error}"
            ) from None
    try:
        plan = FaultPlan(**plan_kwargs)
        policy = RetryPolicy(**policy_kwargs) if policy_kwargs else None
    except ValueError as error:
        raise FaultSpecError(str(error)) from None
    return plan, policy


# -- injected task bodies -----------------------------------------------------
#
# Module-level so the injection wrappers pickle whenever plain tasks do:
# the process backend ships injected tasks to its workers exactly like
# healthy ones, and the crash/timeout surfaces wherever the task would
# have run.


def _raise_worker_crash(proc: int, attempt: int):
    raise WorkerCrash(
        f"injected worker crash on process {proc} (attempt {attempt})"
    )


def _raise_task_timeout(proc: int, attempt: int):
    raise TaskTimeout(
        f"injected task timeout on process {proc} (attempt {attempt})"
    )


INJECTED_TASKS = {
    "crash": _raise_worker_crash,
    "timeout": _raise_task_timeout,
}
