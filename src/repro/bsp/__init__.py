"""BSP substrate: machine parameters, superstep engine, cost accounting,
and pluggable execution backends."""

from repro.bsp.cost import BspCost, SuperstepCost
from repro.bsp.executor import (
    BACKENDS,
    ProcessExecutor,
    SequentialExecutor,
    ThreadExecutor,
    get_executor,
    shutdown_executors,
)
from repro.bsp.machine import BspMachine
from repro.bsp.network import (
    HRelation,
    h_relation_of_matrix,
    h_relation_of_messages,
    one_relation,
)
from repro.bsp.params import PREDEFINED, BspParams

__all__ = [
    "BACKENDS",
    "BspCost",
    "BspMachine",
    "BspParams",
    "HRelation",
    "PREDEFINED",
    "ProcessExecutor",
    "SequentialExecutor",
    "SuperstepCost",
    "ThreadExecutor",
    "get_executor",
    "h_relation_of_matrix",
    "h_relation_of_messages",
    "one_relation",
    "shutdown_executors",
]
