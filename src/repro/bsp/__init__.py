"""BSP substrate: machine parameters, superstep engine, cost accounting."""

from repro.bsp.cost import BspCost, SuperstepCost
from repro.bsp.machine import BspMachine
from repro.bsp.network import (
    HRelation,
    h_relation_of_matrix,
    h_relation_of_messages,
    one_relation,
)
from repro.bsp.params import PREDEFINED, BspParams

__all__ = [
    "BspCost",
    "BspMachine",
    "BspParams",
    "HRelation",
    "PREDEFINED",
    "SuperstepCost",
    "h_relation_of_matrix",
    "h_relation_of_messages",
    "one_relation",
]
