"""BSP substrate: machine parameters, superstep engine, cost accounting,
pluggable execution backends, and deterministic fault injection."""

from repro.bsp.cost import BspCost, SuperstepCost
from repro.bsp.executor import (
    BACKENDS,
    ProcessExecutor,
    SequentialExecutor,
    ThreadExecutor,
    get_executor,
    shutdown_executors,
)
from repro.bsp.faults import (
    FAULT_KINDS,
    BackendUnavailableError,
    BrokenPool,
    BspFaultError,
    FaultPlan,
    FaultSpecError,
    MessageFault,
    ProcOutcome,
    RetryPolicy,
    SuperstepFault,
    TaskTimeout,
    TransientFault,
    WorkerCrash,
    parse_fault_spec,
)
from repro.bsp.machine import BspMachine
from repro.bsp.network import (
    HRelation,
    h_relation_of_matrix,
    h_relation_of_messages,
    one_relation,
)
from repro.bsp.params import PREDEFINED, BspParams

__all__ = [
    "BACKENDS",
    "BackendUnavailableError",
    "BrokenPool",
    "BspCost",
    "BspFaultError",
    "BspMachine",
    "BspParams",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpecError",
    "HRelation",
    "MessageFault",
    "PREDEFINED",
    "ProcOutcome",
    "ProcessExecutor",
    "RetryPolicy",
    "SequentialExecutor",
    "SuperstepCost",
    "SuperstepFault",
    "TaskTimeout",
    "ThreadExecutor",
    "TransientFault",
    "WorkerCrash",
    "get_executor",
    "h_relation_of_matrix",
    "h_relation_of_messages",
    "one_relation",
    "parse_fault_spec",
    "shutdown_executors",
]
