"""Pluggable parallel execution backends for the BSP substrate.

The :class:`~repro.bsp.machine.BspMachine` *accounts* cost; an
:class:`Executor` decides how the per-process computation phase of a
superstep actually runs.  Three interchangeable backends sit behind one
protocol:

* :class:`SequentialExecutor` — the historical behaviour: run each task
  in order on the calling thread (the default, and the reference
  semantics the others are differentially tested against);
* :class:`ThreadExecutor` — a shared ``ThreadPoolExecutor``; real
  concurrency for I/O-ish workloads and a scheduling stress test for the
  deterministic cost accounting;
* :class:`ProcessExecutor` — a shared ``ProcessPoolExecutor``; true
  multi-core parallelism for *picklable* per-process tasks, with a
  per-task inline fallback (counted in ``bsp.backend.process.inline``)
  for tasks that cannot cross a process boundary (closures over mutable
  references, lambdas, whole BSML contexts).

Every task is a zero-argument callable returning ``(value, ops)`` where
``ops`` is the abstract local-work count to fold into the cost model.
Executors measure per-task wall-clock seconds (*inside* the worker, so
IPC and pickling overhead is excluded from compute time) and report
:class:`TaskOutcome` records in task order.  Cost accounting therefore
stays **backend-independent**: the abstract op counts are computed by the
tasks themselves, deterministically, while the measured seconds ride
alongside and never participate in :class:`~repro.bsp.cost.BspCost`
equality.

Error discipline: the sequential backend fails fast (exactly the old
in-line behaviour); the concurrent backends run every task and report
each task's error, and the machine re-raises the lowest-index one, so
the *propagated* exception is deterministic across backends.  **No
executor path discards an exception silently**: an inline fallback
records *why* it fell back on the outcome (``fallback_error``), an
unexpected fallback cause is counted under
``bsp.backend.process.fallback_error``, and a broken pool is reported as
a per-task error (retryable at machine level — see
:mod:`repro.bsp.faults`) rather than being papered over.  A backend
whose pool cannot even start in this environment raises
:class:`~repro.bsp.faults.BackendUnavailableError` with a one-line
message naming the valid backends.
"""

from __future__ import annotations

import functools
import os
import pickle
import threading
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro import obs, perf
from repro.bsp.faults import BackendUnavailableError

#: A unit of per-process work: returns ``(value, abstract_op_count)``.
Task = Callable[[], Any]

#: The canonical backend names, in documentation order.
BACKENDS = ("seq", "thread", "process")

_ALIASES = {
    "seq": "seq",
    "sequential": "seq",
    "thread": "thread",
    "threads": "thread",
    "process": "process",
    "processes": "process",
}


@dataclass
class TaskOutcome:
    """What happened to one task: a value, an error, or skipped.

    ``seconds`` is the wall-clock compute time measured around the call
    inside the worker (thread, child process, or the calling thread for
    the sequential backend); ``started`` is the worker's
    ``perf_counter`` at call time, so the tracing layer
    (:mod:`repro.obs`) can place the task on its process's timeline.
    ``fallback_error`` records *why* the process backend ran this task
    inline instead of on the pool (the pickling or submission failure) —
    the task may still have succeeded, but the cause is never discarded.
    """

    value: Any = None
    seconds: float = 0.0
    started: float = 0.0
    error: Optional[BaseException] = None
    skipped: bool = False
    fallback_error: Optional[str] = None


def _timed(task: Task) -> TaskOutcome:
    """Run ``task`` and capture its value/error with wall-clock timing."""
    start = time.perf_counter()
    try:
        value = task()
    except Exception as error:
        return TaskOutcome(
            error=error, seconds=time.perf_counter() - start, started=start
        )
    return TaskOutcome(
        value=value, seconds=time.perf_counter() - start, started=start
    )


def _run_pickled(blob: bytes) -> TaskOutcome:
    """Worker entry point of :class:`ProcessExecutor` (module-level so it
    is importable — hence picklable — in the child)."""
    task = pickle.loads(blob)
    return _timed(task)


def _run_parts(blobs: Sequence[bytes]) -> TaskOutcome:
    """Worker entry point for part-wise pickled ``functools.partial``
    tasks: ``blobs[0]`` is the function, the rest its positional
    arguments, each pickled separately so the parent can reuse one blob
    for an object shared across a superstep's tasks (typically the
    closure environment every per-process task carries)."""
    parts = [pickle.loads(blob) for blob in blobs]
    return _timed(functools.partial(parts[0], *parts[1:]))


class SequentialExecutor:
    """Run tasks one after another on the calling thread (fail-fast).

    This is the reference backend: its interleaving is exactly the
    historical in-line execution, so anything the differential harness
    observes on it defines correctness for the others.
    """

    name = "seq"

    def run(self, tasks: Sequence[Task]) -> List[TaskOutcome]:
        outcomes: List[TaskOutcome] = []
        failed = False
        for task in tasks:
            if failed:
                outcomes.append(TaskOutcome(skipped=True))
                continue
            outcome = _timed(task)
            outcomes.append(outcome)
            failed = outcome.error is not None
        return outcomes

    def recycle(self) -> None:
        """Replace the worker pool (no-op: there is none)."""

    def ensure_available(self) -> None:
        """Probe that the backend can run here (always true)."""

    def close(self) -> None:
        pass


class ThreadExecutor:
    """Run tasks concurrently on a shared thread pool.

    Re-entrant submissions (a task that itself opens a computation phase,
    e.g. an improperly nested BSML ``mkpar``) are detected via a
    thread-local flag and run inline instead of being queued — queueing
    them behind the very task that is waiting for them would deadlock a
    small pool.  The nesting itself is still rejected downstream by the
    usual dynamic checks; the executor just refuses to die first.
    """

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self._max_workers = max_workers or min(16, 4 * (os.cpu_count() or 1))
        self._pool: Optional[ThreadPoolExecutor] = None
        self._local = threading.local()

    def _ensure(self) -> ThreadPoolExecutor:
        if self._pool is None:
            try:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers, thread_name_prefix="bsp-proc"
                )
            except Exception as error:
                raise BackendUnavailableError(
                    f"backend 'thread' is unavailable here ({error}); "
                    f"valid backends: {', '.join(BACKENDS)}"
                ) from error
        return self._pool

    def run(self, tasks: Sequence[Task]) -> List[TaskOutcome]:
        if getattr(self._local, "in_worker", False):
            if obs.is_tracing():
                obs.event(
                    "backend.reentrant_inline",
                    obs.MACHINE_TRACK,
                    backend=self.name,
                    tasks=len(tasks),
                )
            return SequentialExecutor().run(tasks)
        pool = self._ensure()
        futures = [pool.submit(self._worker, task) for task in tasks]
        return [future.result() for future in futures]

    def _worker(self, task: Task) -> TaskOutcome:
        self._local.in_worker = True
        try:
            return _timed(task)
        finally:
            self._local.in_worker = False

    def recycle(self) -> None:
        """Tear down the pool; the next phase builds a fresh one."""
        if obs.is_tracing():
            obs.event("backend.recycle", obs.MACHINE_TRACK, backend=self.name)
        self.close()

    def ensure_available(self) -> None:
        """Probe that a thread pool can be started here (eagerly)."""
        self._ensure()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


#: Exception types that mean "this object simply does not pickle" — the
#: routine, by-design fallback signal for closures, lambdas and live
#: contexts.  Anything else escaping ``pickle.dumps`` (a ``__reduce__``
#: raising, a corrupted payload) is an *unexpected* failure and is
#: counted under ``bsp.backend.process.fallback_error``.
_EXPECTED_UNPICKLABLE = (pickle.PicklingError, TypeError, AttributeError)


class ProcessExecutor:
    """Run tasks on a shared process pool (``concurrent.futures``).

    A task crosses the process boundary only if it pickles; tasks built
    from module-level functions and picklable values (the ones the
    evaluator and the BSML primitives construct) do, while closures over
    live mutable state — references, pools, whole contexts — do not and
    are executed inline in the parent, where their side effects land on
    the real objects.  Every inline fallback records its cause on the
    outcome (``fallback_error``) and an unexpected cause — a pickling
    probe *raising* rather than politely refusing, or a result that
    cannot come back — is additionally counted under
    ``bsp.backend.process.fallback_error``; nothing is discarded.

    A broken pool (a worker died mid-phase) is **not** silently papered
    over: the affected tasks report the :class:`BrokenExecutor` as their
    error — a transient, retryable condition — and the dead pool is
    dropped so the next phase starts a fresh one.  The machine layer
    decides whether to retry (``RetryPolicy``) or abort atomically
    (:class:`~repro.bsp.faults.SuperstepFault`).
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self._max_workers = max_workers or min(4, os.cpu_count() or 1)
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure(self) -> ProcessPoolExecutor:
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(max_workers=self._max_workers)
            except Exception as error:
                raise BackendUnavailableError(
                    f"backend 'process' is unavailable here ({error}); "
                    f"valid backends: {', '.join(BACKENDS)}"
                ) from error
        return self._pool

    def run(self, tasks: Sequence[Task]) -> List[TaskOutcome]:
        outcomes: List[Optional[TaskOutcome]] = [None] * len(tasks)
        futures: Dict[int, Any] = {}
        fallback_causes: Dict[int, BaseException] = {}
        # Per-phase pickle cache, keyed by object identity.  The tasks of
        # one superstep usually share big immutable parts — every
        # per-process task carries the *same* function value (its closure
        # environment included), which used to be re-pickled p times.
        # Identity keys are safe exactly for the duration of this call:
        # ``tasks`` keeps every part alive, so an id cannot be recycled.
        # Part-wise pickling trades away aliasing *between* the parts of
        # one task, which is sound here: evaluator values are immutable,
        # and the one mutable value (``VRef``) refuses to pickle at all.
        cache: Dict[int, bytes] = {}

        def dump_part(part: Any) -> bytes:
            key = id(part)
            blob = cache.get(key)
            if blob is not None:
                perf.increment("bsp.backend.process.pickle_cache_hit")
                return blob
            blob = pickle.dumps(part)
            perf.increment("bsp.backend.process.pickle_cache_miss")
            cache[key] = blob
            return blob

        for index, task in enumerate(tasks):
            try:
                if isinstance(task, functools.partial) and not task.keywords:
                    blobs = [dump_part(task.func)]
                    blobs.extend(dump_part(arg) for arg in task.args)
                    entry = (_run_parts, blobs)
                else:
                    entry = (_run_pickled, pickle.dumps(task))
            except Exception as error:
                fallback_causes[index] = error  # runs inline below
                continue
            try:
                futures[index] = self._ensure().submit(*entry)
            except BackendUnavailableError:
                raise
            except Exception as error:
                futures.pop(index, None)
                fallback_causes[index] = error
        for index, task in enumerate(tasks):
            future = futures.get(index)
            if future is not None:
                try:
                    outcomes[index] = future.result()
                    continue
                except BrokenExecutor as error:
                    # The pool died under this task.  Report it as the
                    # task's (retryable) error and drop the dead pool so
                    # the next phase — or a machine-level retry — gets a
                    # fresh one.  Never run the task inline here: the
                    # machine must decide whether a retry is allowed.
                    self._pool = None
                    perf.increment("bsp.backend.process.broken_pool")
                    if obs.is_tracing():
                        obs.event(
                            "backend.broken_pool",
                            obs.MACHINE_TRACK,
                            backend=self.name,
                            slot=index,
                        )
                    outcomes[index] = TaskOutcome(error=error)
                    continue
                except Exception as error:
                    # The result could not come back (e.g. it does not
                    # unpickle).  Fall back inline, but record why.
                    fallback_causes[index] = error
            cause = fallback_causes.get(index)
            perf.increment("bsp.backend.process.inline")
            if cause is not None and not isinstance(cause, _EXPECTED_UNPICKLABLE):
                perf.increment("bsp.backend.process.fallback_error")
            if obs.is_tracing():
                obs.event(
                    "backend.fallback",
                    obs.MACHINE_TRACK,
                    backend=self.name,
                    slot=index,
                    cause=(
                        f"{type(cause).__name__}: {cause}"
                        if cause is not None
                        else "unpicklable"
                    ),
                    expected=cause is None
                    or isinstance(cause, _EXPECTED_UNPICKLABLE),
                )
            outcome = _timed(task)
            if cause is not None:
                outcome.fallback_error = f"{type(cause).__name__}: {cause}"
            outcomes[index] = outcome
        return [outcome for outcome in outcomes if outcome is not None]

    def recycle(self) -> None:
        """Drop the current pool (fast); the next phase builds a fresh
        one.  Used by the fault layer's injected broken-pool events and
        safe to call on a healthy pool."""
        if obs.is_tracing():
            obs.event("backend.recycle", obs.MACHINE_TRACK, backend=self.name)
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def ensure_available(self) -> None:
        """Probe that a process pool can be started here (eagerly)."""
        self._ensure()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


#: Shared per-name instances so thread/process pools are reused across
#: machines (pool startup dwarfs any superstep; see bench_backends.py).
_SHARED: Dict[str, Any] = {}


def get_executor(name: str = "seq"):
    """The shared executor for ``name`` (``seq``, ``thread``, ``process``).

    Aliases ``sequential``/``threads``/``processes`` are accepted.
    Instances are lazily created and cached module-wide, so repeated
    machines reuse one pool per backend.
    """
    try:
        key = _ALIASES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r} (choose from {', '.join(BACKENDS)})"
        ) from None
    if key not in _SHARED:
        _SHARED[key] = {
            "seq": SequentialExecutor,
            "thread": ThreadExecutor,
            "process": ProcessExecutor,
        }[key]()
    return _SHARED[key]


def shutdown_executors() -> None:
    """Close every shared pool (tests and interpreter teardown)."""
    for executor in _SHARED.values():
        executor.close()
