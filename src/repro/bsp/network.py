"""h-relation accounting for the communication phase of a superstep.

During a superstep every process requests data transfers; the network then
realizes an *h-relation* where ``h_i = max(h_i_plus, h_i_minus)`` is the
larger of the words sent and received by process ``i``, and the phase
costs ``g * max_i h_i`` (section 2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class HRelation:
    """The realized communication pattern of one superstep."""

    sent_words: Tuple[int, ...]  # h_i_plus, per process
    received_words: Tuple[int, ...]  # h_i_minus, per process

    @property
    def p(self) -> int:
        return len(self.sent_words)

    @property
    def per_process(self) -> Tuple[int, ...]:
        """``h_i = max(h_i_plus, h_i_minus)`` for each process."""
        return tuple(
            max(out, inn) for out, inn in zip(self.sent_words, self.received_words)
        )

    @property
    def h(self) -> int:
        """The arity of the relation: ``max_i h_i``."""
        return max(self.per_process, default=0)

    @property
    def total_words(self) -> int:
        return sum(self.sent_words)


def h_relation_of_matrix(sent: Sequence[Sequence[int]]) -> HRelation:
    """Build an :class:`HRelation` from a full traffic matrix.

    ``sent[i][j]`` is the number of words process ``i`` sends to process
    ``j``.  Diagonal entries (a process "sending" to itself) cost nothing
    and are ignored, matching a library where local data stays in place.
    """
    p = len(sent)
    for row in sent:
        if len(row) != p:
            raise ValueError("traffic matrix must be square")
        if any(words < 0 for words in row):
            raise ValueError("word counts must be non-negative")
    sent_words = tuple(
        sum(words for j, words in enumerate(row) if j != i)
        for i, row in enumerate(sent)
    )
    received_words = tuple(
        sum(sent[j][i] for j in range(p) if j != i) for i in range(p)
    )
    return HRelation(sent_words, received_words)


def h_relation_of_messages(
    p: int, messages: Dict[Tuple[int, int], int]
) -> HRelation:
    """Build an :class:`HRelation` from sparse ``(src, dst) -> words``."""
    matrix: List[List[int]] = [[0] * p for _ in range(p)]
    for (src, dst), words in messages.items():
        if not (0 <= src < p and 0 <= dst < p):
            raise ValueError(f"message endpoints ({src}, {dst}) out of range")
        matrix[src][dst] += words
    return h_relation_of_matrix(matrix)


def one_relation(p: int, size: int = 1) -> HRelation:
    """The canonical 1-relation scaled by ``size``: every process sends and
    receives ``size`` words (a cyclic shift), costing ``g * size``."""
    messages = {(i, (i + 1) % p): size for i in range(p)} if p > 1 else {}
    return h_relation_of_messages(p, messages)
