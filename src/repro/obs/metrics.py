"""A label-aware metrics registry with Prometheus text exposition.

Where :mod:`repro.perf` gives one *request* a window of counters and
:mod:`repro.obs.tracer` gives one *run* a span timeline, this module is
the long-lived aggregate view a running service needs: process-wide
**counters**, **gauges** and fixed-bucket streaming **histograms**
(O(1) memory per series — cumulative bucket counts plus sum and count,
never the raw samples), each optionally split by a small set of labels.

Three sources feed the registry:

* the **trace layer** — when metrics are enabled a module-global sink is
  registered with :mod:`repro.obs.tracer`; every finished span or event
  (superstep compute/exchange/barrier phases, per-process tasks,
  ``Solve``/unify/inference spans, fault/retry/rollback events) is
  projected onto the standard histograms and counters below.  The sink
  is *not* context-local on purpose: per-request trace windows stay
  isolated in their :mod:`contextvars`, while the metrics aggregate
  across every request of the process;
* the **service layer** — :mod:`repro.service.server` observes
  per-route/engine/backend request latency and maintains the admission
  gauges; :mod:`repro.service.cache` counts response-cache hits;
* the **perf layer** — :mod:`repro.perf.bridge` contributes scrape-time
  samples for every registered solver cache and intern pool.

Collection is **disabled by default** and reference-counted:
:func:`enable` installs the trace sink (the service does this at boot,
the REPL on ``:metrics on``), :func:`disable` removes it when the last
user leaves.  With metrics disabled every instrumentation point is one
truthiness test — the ``bench_metrics.py`` guard holds the machine to
the same <= 1.05x budget as the tracer.

The exposition format is the Prometheus text format (version 0.0.4):
``# HELP``/``# TYPE`` comments followed by ``name{label="value"} value``
samples; histograms expose cumulative ``_bucket{le="..."}`` series plus
``_sum`` and ``_count``.  :func:`parse_prometheus` is the strict parser
the tests and the CI load-test scrape run against :func:`render_global`
output.
"""

from __future__ import annotations

import math
import re
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs import tracer
from repro.obs.tracer import TraceRecord

#: The Content-Type a Prometheus scrape expects.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Latency buckets (seconds) shared by the standard histograms: fine
#: sub-millisecond resolution (solver spans, cached replays) up to tens
#: of seconds (cold runs under load).  ``+Inf`` is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _check_labelnames(labelnames: Sequence[str]) -> Tuple[str, ...]:
    for label in labelnames:
        if not _LABEL_RE.match(label) or label.startswith("__"):
            raise ValueError(f"invalid label name {label!r}")
    return tuple(labelnames)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(pairs: Sequence[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"' for name, value in pairs
    )
    return "{" + inner + "}"


@dataclass(frozen=True)
class MetricSample:
    """One exposition line: a (possibly suffixed) sample name, its label
    pairs in declaration order, and the value."""

    suffix: str  # "", "_bucket", "_sum", "_count"
    labels: Tuple[Tuple[str, str], ...]
    value: float


@dataclass
class MetricData:
    """One family as rendered: name, kind, help and its samples.  This is
    also what scrape-time collectors (the perf bridge) return."""

    name: str
    kind: str  # counter | gauge | histogram
    help: str
    samples: List[MetricSample] = field(default_factory=list)


class _Family:
    """Shared bookkeeping of one metric family (all label combinations)."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labelnames = _check_labelnames(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _pairs(self, key: Tuple[str, ...]) -> Tuple[Tuple[str, str], ...]:
        return tuple(zip(self.labelnames, key))


class Counter(_Family):
    """A monotonically increasing sum per label combination."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def reset(self) -> None:
        with self._lock:
            self._values.clear()

    def collect(self) -> MetricData:
        with self._lock:
            items = sorted(self._values.items())
        return MetricData(
            self.name,
            self.kind,
            self.help,
            [MetricSample("", self._pairs(key), value) for key, value in items],
        )


class Gauge(_Family):
    """A value that can go up and down; a series may instead be bound to
    a callable read at scrape time (:meth:`set_function`)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}
        self._functions: Dict[Tuple[str, ...], Callable[[], float]] = {}

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def set_to_max(self, value: float, **labels: Any) -> None:
        """Raise the series to ``value`` if it is below it (peak gauges)."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = max(self._values.get(key, 0.0), float(value))

    def set_function(self, fn: Callable[[], float], **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._functions[key] = fn

    def clear_function(self, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._functions.pop(key, None)

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            fn = self._functions.get(key)
            if fn is None:
                return self._values.get(key, 0.0)
        return float(fn())

    def reset(self) -> None:
        with self._lock:
            self._values.clear()
            self._functions.clear()

    def collect(self) -> MetricData:
        with self._lock:
            items = dict(self._values)
            functions = dict(self._functions)
        for key, fn in functions.items():
            try:
                items[key] = float(fn())
            except Exception:
                # A scrape must never fail because one callback did; the
                # stale stored value (or 0) stands in.
                items.setdefault(key, 0.0)
        return MetricData(
            self.name,
            self.kind,
            self.help,
            [
                MetricSample("", self._pairs(key), value)
                for key, value in sorted(items.items())
            ],
        )


class Histogram(_Family):
    """A fixed-bucket streaming histogram: cumulative bucket counts plus
    sum and count per series — O(len(buckets)) memory however many
    observations arrive."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be distinct")
        self.buckets = bounds
        #: key -> [per-bucket counts..., +Inf count], observation count, sum
        self._series: Dict[Tuple[str, ...], Tuple[List[int], List[float]]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        value = float(value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = ([0] * (len(self.buckets) + 1), [0, 0.0])
                self._series[key] = series
            counts, totals = series
            index = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            counts[index] += 1
            totals[0] += 1
            totals[1] += value

    def count(self, **labels: Any) -> int:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return int(series[1][0]) if series else 0

    def sum(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return series[1][1] if series else 0.0

    def quantile(self, q: float, **labels: Any) -> float:
        """A bucket-resolution quantile estimate: the upper bound of the
        first bucket whose cumulative count reaches ``q`` of the total
        (``inf`` when only the overflow bucket holds the rank)."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None or series[1][0] == 0:
                return 0.0
            counts = list(series[0])
            total = series[1][0]
        rank = q * total
        cumulative = 0
        for bound, count in zip(self.buckets, counts):
            cumulative += count
            if cumulative >= rank:
                return bound
        return math.inf

    def reset(self) -> None:
        with self._lock:
            self._series.clear()

    def collect(self) -> MetricData:
        with self._lock:
            snapshot = {
                key: (list(counts), list(totals))
                for key, (counts, totals) in self._series.items()
            }
        samples: List[MetricSample] = []
        for key in sorted(snapshot):
            counts, (count, total) = snapshot[key]
            pairs = self._pairs(key)
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts):
                cumulative += bucket_count
                samples.append(
                    MetricSample(
                        "_bucket",
                        pairs + (("le", _format_value(bound)),),
                        cumulative,
                    )
                )
            samples.append(
                MetricSample("_bucket", pairs + (("le", "+Inf"),), count)
            )
            samples.append(MetricSample("_sum", pairs, total))
            samples.append(MetricSample("_count", pairs, count))
        return MetricData(self.name, self.kind, self.help, samples)


class MetricsRegistry:
    """A named collection of metric families plus scrape-time collectors.

    ``counter``/``gauge``/``histogram`` are idempotent per name: asking
    again for an existing family returns it (and raises if the kind or
    labels disagree), so call sites can declare their metrics without
    coordinating.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}
        self._collectors: List[Callable[[], Iterable[MetricData]]] = []

    def _register(self, factory: Callable[[], _Family], name: str, kind: str) -> _Family:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            family = factory()
            self._families[name] = family
            return family

    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Counter:
        family = self._register(lambda: Counter(name, help, labelnames), name, "counter")
        assert isinstance(family, Counter)
        return family

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Gauge:
        family = self._register(lambda: Gauge(name, help, labelnames), name, "gauge")
        assert isinstance(family, Gauge)
        return family

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        family = self._register(
            lambda: Histogram(name, help, labelnames, buckets), name, "histogram"
        )
        assert isinstance(family, Histogram)
        return family

    def register_collector(self, fn: Callable[[], Iterable[MetricData]]) -> None:
        """Add a scrape-time collector contributing extra families (the
        perf-layer cache bridge).  Idempotent per callable."""
        with self._lock:
            if fn not in self._collectors:
                self._collectors.append(fn)

    def unregister_collector(self, fn: Callable[[], Iterable[MetricData]]) -> None:
        with self._lock:
            if fn in self._collectors:
                self._collectors.remove(fn)

    def reset(self) -> None:
        """Zero every series of every family (families stay registered,
        so module-level references keep working).  Test plumbing."""
        with self._lock:
            families = list(self._families.values())
        for family in families:
            family.reset()  # type: ignore[attr-defined]

    def collect(self) -> List[MetricData]:
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
            collectors = list(self._collectors)
        data = [family.collect() for family in families]  # type: ignore[attr-defined]
        for fn in collectors:
            try:
                data.extend(fn())
            except Exception:
                # Scrapes must survive a broken collector.
                continue
        data.sort(key=lambda metric: metric.name)
        return data

    def render(self) -> str:
        """The Prometheus text exposition of every family."""
        lines: List[str] = []
        for metric in self.collect():
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for sample in metric.samples:
                lines.append(
                    f"{metric.name}{sample.suffix}"
                    f"{_render_labels(sample.labels)} {_format_value(sample.value)}"
                )
        return "\n".join(lines) + "\n"


# -- the process-global registry and the standard metrics ---------------------

_GLOBAL = MetricsRegistry()

#: Request latency by logical route, engine, backend and cache outcome.
REQUEST_SECONDS = _GLOBAL.histogram(
    "repro_request_seconds",
    "Service request latency in seconds.",
    ("route", "engine", "backend", "cache"),
)

#: Requests by route and HTTP status (429 rejections included).
REQUESTS_TOTAL = _GLOBAL.counter(
    "repro_requests_total",
    "Service requests handled, by route and status code.",
    ("route", "status"),
)

REJECTED_TOTAL = _GLOBAL.counter(
    "repro_requests_rejected_total",
    "Requests rejected by admission control (HTTP 429).",
)

CACHE_REQUESTS_TOTAL = _GLOBAL.counter(
    "repro_response_cache_requests_total",
    "Response-cache lookups by result (hit/miss) plus evictions.",
    ("result",),
)

INFLIGHT_REQUESTS = _GLOBAL.gauge(
    "repro_inflight_requests",
    "Requests currently computing (inside the admission semaphore).",
)

WAITING_REQUESTS = _GLOBAL.gauge(
    "repro_waiting_requests",
    "Requests queued on the admission semaphore.",
)

PEAK_INFLIGHT = _GLOBAL.gauge(
    "repro_peak_inflight_requests",
    "High-water mark of concurrently computing requests.",
)

SESSIONS = _GLOBAL.gauge(
    "repro_sessions",
    "Live incremental editing sessions.",
)

SUPERSTEP_SECONDS = _GLOBAL.histogram(
    "repro_superstep_phase_seconds",
    "Measured BSP superstep phase durations by phase "
    "(compute/exchange/barrier).",
    ("phase",),
)

SUPERSTEPS_TOTAL = _GLOBAL.counter(
    "repro_supersteps_total",
    "BSP supersteps committed (barriers passed).",
)

WORDS_TOTAL = _GLOBAL.counter(
    "repro_words_exchanged_total",
    "Words delivered across all h-relations.",
)

INFERENCE_SECONDS = _GLOBAL.histogram(
    "repro_inference_seconds",
    "Type-inference span durations by kind (infer/judgment/solve/unify).",
    ("kind",),
)

FAULTS_TOTAL = _GLOBAL.counter(
    "repro_faults_total",
    "Injected faults drawn from armed fault plans, by kind.",
    ("kind",),
)

RETRIES_TOTAL = _GLOBAL.counter(
    "repro_retries_total",
    "Superstep retry attempts, by phase.",
    ("phase",),
)

ROLLBACKS_TOTAL = _GLOBAL.counter(
    "repro_rollbacks_total",
    "Superstep rollbacks (retries exhausted), by phase.",
    ("phase",),
)

TASK_SECONDS_TOTAL = _GLOBAL.counter(
    "repro_task_seconds_total",
    "Measured per-process compute seconds (load-imbalance numerator).",
    ("proc",),
)


def global_registry() -> MetricsRegistry:
    return _GLOBAL


def render_global() -> str:
    return _GLOBAL.render()


# -- the trace-record sink ----------------------------------------------------

_INFERENCE_SPANS = frozenset({"infer", "judgment", "solve", "unify"})


def _trace_sink(record: TraceRecord) -> None:
    """Project one finished trace record onto the standard metrics."""
    name = record.name
    if record.dur is not None:
        if name.startswith("superstep."):
            SUPERSTEP_SECONDS.observe(record.dur, phase=name[len("superstep.") :])
        elif name in _INFERENCE_SPANS:
            INFERENCE_SECONDS.observe(record.dur, kind=name)
        elif name == "task":
            proc = record.arg("proc")
            if proc is not None:
                TASK_SECONDS_TOTAL.inc(record.dur, proc=str(proc))
        return
    if name == "superstep":
        SUPERSTEPS_TOTAL.inc()
        words = record.arg("words")
        if words:
            WORDS_TOTAL.inc(words)
    elif name == "fault":
        FAULTS_TOTAL.inc(kind=str(record.arg("kind", "unknown")))
    elif name == "retry":
        RETRIES_TOTAL.inc(phase=str(record.arg("phase", "")))
    elif name == "rollback":
        ROLLBACKS_TOTAL.inc(phase=str(record.arg("phase", "")))


# -- enable/disable (reference counted) ---------------------------------------

_STATE_LOCK = threading.Lock()
_ENABLED_DEPTH = 0


def is_enabled() -> bool:
    """True when at least one user (server, REPL session) enabled metrics."""
    return _ENABLED_DEPTH > 0


def enable() -> None:
    """Turn metrics collection on (reference counted).

    Installs the trace sink so superstep/inference/fault records feed
    the histograms, and registers the perf-layer cache bridge as a
    scrape-time collector.
    """
    global _ENABLED_DEPTH
    with _STATE_LOCK:
        _ENABLED_DEPTH += 1
        if _ENABLED_DEPTH == 1:
            tracer.add_sink(_trace_sink)
            from repro.perf.bridge import cache_metrics

            _GLOBAL.register_collector(cache_metrics)


def disable() -> None:
    """Undo one :func:`enable`; the sink is removed when the last user
    leaves.  Collected values persist (scrapes of a paused registry show
    the final totals) until :meth:`MetricsRegistry.reset`."""
    global _ENABLED_DEPTH
    with _STATE_LOCK:
        if _ENABLED_DEPTH == 0:
            return
        _ENABLED_DEPTH -= 1
        if _ENABLED_DEPTH == 0:
            tracer.remove_sink(_trace_sink)


# -- exposition parser --------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)

_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)

_VALID_TYPES = frozenset(
    {"counter", "gauge", "histogram", "summary", "untyped"}
)


def _parse_labels(raw: str, line_number: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    position = 0
    while position < len(raw):
        match = _LABEL_PAIR_RE.match(raw, position)
        if match is None:
            raise ValueError(
                f"line {line_number}: malformed label syntax in {raw!r}"
            )
        value = match.group("value")
        value = (
            value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        )
        labels[match.group("name")] = value
        position = match.end()
    return labels


def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse (and validate) a Prometheus text exposition.

    Returns ``{family name: {"type": ..., "help": ..., "samples":
    [(sample name, labels dict, value), ...]}}``.  Raises
    :class:`ValueError` naming the offending line for any violation of
    the format: bad metric/label names, malformed label syntax,
    non-numeric values, samples whose family has no ``# TYPE``, or
    histogram bucket counts that are not cumulative.
    """
    families: Dict[str, Dict[str, Any]] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                raise ValueError(f"line {line_number}: malformed HELP line")
            families.setdefault(
                parts[2], {"type": None, "help": None, "samples": []}
            )["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or not _NAME_RE.match(parts[2]):
                raise ValueError(f"line {line_number}: malformed TYPE line")
            if parts[3] not in _VALID_TYPES:
                raise ValueError(
                    f"line {line_number}: unknown metric type {parts[3]!r}"
                )
            families.setdefault(
                parts[2], {"type": None, "help": None, "samples": []}
            )["type"] = parts[3]
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_number}: malformed sample line {line!r}")
        sample_name = match.group("name")
        labels = _parse_labels(match.group("labels") or "", line_number)
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError:
            raise ValueError(
                f"line {line_number}: non-numeric sample value {raw_value!r}"
            ) from None
        family_name = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if base and families.get(base, {}).get("type") == "histogram":
                family_name = base
                break
        if family_name not in families or families[family_name]["type"] is None:
            raise ValueError(
                f"line {line_number}: sample {sample_name!r} has no # TYPE"
            )
        families[family_name]["samples"].append((sample_name, labels, value))
    _check_histogram_consistency(families)
    return families


def _check_histogram_consistency(families: Dict[str, Dict[str, Any]]) -> None:
    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        series: Dict[Tuple[Tuple[str, str], ...], List[Tuple[float, float]]] = {}
        for sample_name, labels, value in family["samples"]:
            if not sample_name.endswith("_bucket"):
                continue
            if "le" not in labels:
                raise ValueError(
                    f"histogram {name!r}: bucket sample without an 'le' label"
                )
            bound = (
                math.inf if labels["le"] == "+Inf" else float(labels["le"])
            )
            key = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            series.setdefault(key, []).append((bound, value))
        for key, buckets in series.items():
            buckets.sort()
            counts = [count for _, count in buckets]
            if counts != sorted(counts):
                raise ValueError(
                    f"histogram {name!r}{dict(key)}: bucket counts are not "
                    "cumulative"
                )
            if buckets and buckets[-1][0] != math.inf:
                raise ValueError(
                    f"histogram {name!r}{dict(key)}: missing the +Inf bucket"
                )
