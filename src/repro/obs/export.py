"""Exporters for :class:`~repro.obs.tracer.Trace` collections.

Three formats, one per audience:

* :func:`to_chrome` / :func:`write_chrome` — Chrome trace-event JSON
  (the ``{"traceEvents": [...]}`` flavour), loadable in Perfetto or
  ``chrome://tracing``.  Every repro track becomes one named thread
  (``tid``) of a single process, so the BSP processes render as parallel
  tracks with the superstep phases and the inference work laid out
  alongside;
* :func:`to_jsonl` / :func:`write_jsonl` — one JSON object per record,
  timestamps normalized to seconds since the trace epoch; the format for
  downstream tooling and ad-hoc ``jq``;
* :func:`summarize` — a human-readable report with per-span-kind latency
  histograms (count / p50 / p95 / p99 / max / mean) and a per-superstep table of the
  committed abstract cost next to the measured phase times, which is the
  modelled-versus-measured comparison ``repro profile`` prints.

:func:`write_trace` dispatches on an explicit format or the file suffix
(``.jsonl`` -> jsonl, ``.txt`` -> summary, anything else -> Chrome
JSON).  :func:`validate_chrome_trace` is the schema check the CI trace
job runs against emitted files.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.tracer import Trace, TraceRecord

#: The accepted ``--trace-format`` names, in documentation order.
TRACE_FORMATS = ("chrome", "jsonl", "summary")

#: The single Chrome trace-event process id every track lives under.
_PID = 1


def _tids(trace: Trace) -> Dict[str, int]:
    """Stable track -> tid assignment in canonical display order."""
    return {track: tid for tid, track in enumerate(trace.tracks())}


def to_chrome(trace: Trace) -> Dict[str, Any]:
    """The trace as a Chrome trace-event JSON object.

    Spans become complete (``"ph": "X"``) events, instants become
    thread-scoped instant (``"ph": "i"``) events; timestamps are
    microseconds since the trace epoch, sorted ascending so every track's
    timeline is monotone.  Metadata events name the process and one
    thread per track.
    """
    tids = _tids(trace)
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "ts": 0,
            "args": {"name": "repro (BSP + inference)"},
        }
    ]
    for track, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "ts": 0,
                "args": {"name": track},
            }
        )
        events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "ts": 0,
                "args": {"sort_index": tid},
            }
        )
    payload: List[Dict[str, Any]] = []
    for record in trace.records:
        entry: Dict[str, Any] = {
            "name": record.name,
            "pid": _PID,
            "tid": tids[record.track],
            "ts": max(0.0, (record.ts - trace.epoch) * 1e6),
            "args": record.args_dict(),
        }
        if record.is_span:
            entry["ph"] = "X"
            entry["dur"] = max(0.0, record.dur * 1e6)
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        payload.append(entry)
    payload.sort(key=lambda entry: entry["ts"])
    events.extend(payload)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _atomic_write_text(path: Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically.

    The text goes to a temporary file in the *target* directory (same
    filesystem, so the final rename cannot degrade to a copy) and is
    moved into place with :func:`os.replace` only once fully written.
    An exporter interrupted mid-write — out of disk, a signal, a crashed
    worker — therefore leaves either the previous file intact or no file
    at all, never a truncated trace that downstream tooling would choke
    on.
    """
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def write_chrome(trace: Trace, path: Union[str, Path]) -> Path:
    path = Path(path)
    return _atomic_write_text(path, json.dumps(to_chrome(trace), indent=1))


def to_jsonl(trace: Trace) -> List[str]:
    """One JSON line per record: name, track, seconds-since-epoch ``ts``,
    ``dur`` (null for instants) and the args."""
    lines = []
    for record in trace.records:
        lines.append(
            json.dumps(
                {
                    "name": record.name,
                    "track": record.track,
                    "ts": record.ts - trace.epoch,
                    "dur": record.dur,
                    "args": record.args_dict(),
                },
                sort_keys=True,
            )
        )
    return lines


def write_jsonl(trace: Trace, path: Union[str, Path]) -> Path:
    path = Path(path)
    return _atomic_write_text(path, "\n".join(to_jsonl(trace)) + "\n")


# -- latency histograms -------------------------------------------------------


@dataclass(frozen=True)
class SpanHistogram:
    """Latency distribution of one span kind over a trace (seconds)."""

    name: str
    count: int
    p50: float
    p95: float
    p99: float
    max: float
    total: float
    mean: float


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


def histograms(trace: Trace) -> List[SpanHistogram]:
    """Per-span-kind latency histograms, sorted by total time descending
    (ties broken by name, so the report is deterministic)."""
    durations: Dict[str, List[float]] = {}
    for record in trace.records:
        if record.is_span:
            durations.setdefault(record.name, []).append(record.dur)
    out = []
    for name, values in durations.items():
        values.sort()
        total = sum(values)
        out.append(
            SpanHistogram(
                name,
                len(values),
                _percentile(values, 0.50),
                _percentile(values, 0.95),
                _percentile(values, 0.99),
                values[-1],
                total,
                total / len(values),
            )
        )
    out.sort(key=lambda h: (-h.total, h.name))
    return out


def superstep_rows(trace: Trace) -> List[Dict[str, Any]]:
    """Modelled-versus-measured rows, one per committed superstep.

    The abstract side comes from the ``superstep`` commit events (the
    committed :class:`~repro.bsp.cost.BspCost` row: ``w_max``, ``h``,
    label); the measured side sums the ``superstep.compute`` /
    ``superstep.exchange`` / ``superstep.barrier`` span durations that
    carry the same superstep index.
    """
    measured: Dict[int, float] = {}
    for record in trace.records:
        if record.is_span and record.name.startswith("superstep."):
            index = record.arg("superstep")
            if index is not None:
                measured[index] = measured.get(index, 0.0) + record.dur
    rows = []
    for record in trace.events("superstep"):
        index = record.arg("superstep")
        rows.append(
            {
                "superstep": index,
                "w_max": record.arg("w_max"),
                "h": record.arg("h"),
                "label": record.arg("label", ""),
                "measured_s": measured.get(index, 0.0),
            }
        )
    return rows


def summarize(trace: Trace) -> str:
    """The human-readable trace report: span-kind latency histograms,
    instant-event counts, and the per-superstep modelled-versus-measured
    table (when the trace saw a BSP machine run)."""
    span_count = sum(1 for r in trace.records if r.is_span)
    event_count = len(trace.records) - span_count
    lines = [
        "trace summary: "
        f"{span_count} spans, {event_count} events "
        f"on {len(trace.tracks())} tracks"
    ]
    rows = histograms(trace)
    if not rows and trace.records:
        # Span-free traces happen (a window that only saw instant events,
        # e.g. superstep commits from an aborted run); say so explicitly
        # instead of silently omitting the latency table.
        lines.append("  spans: (none recorded)")
    if rows:
        lines.append("  span latencies (ms):")
        lines.append(
            f"    {'kind':<24} {'count':>7} {'p50':>9} {'p95':>9} "
            f"{'p99':>9} {'max':>9} {'mean':>9} {'total':>9}"
        )
        for row in rows:
            lines.append(
                f"    {row.name:<24} {row.count:>7} {row.p50 * 1e3:>9.3f} "
                f"{row.p95 * 1e3:>9.3f} {row.p99 * 1e3:>9.3f} "
                f"{row.max * 1e3:>9.3f} {row.mean * 1e3:>9.3f} "
                f"{row.total * 1e3:>9.2f}"
            )
    counts: Dict[str, int] = {}
    for record in trace.records:
        if not record.is_span:
            counts[record.name] = counts.get(record.name, 0) + 1
    if counts:
        lines.append("  events:")
        for name in sorted(counts):
            lines.append(f"    {name:<24} {counts[name]:>7}")
    steps = superstep_rows(trace)
    if steps:
        lines.append("  supersteps (modelled vs measured):")
        lines.append(
            f"    {'step':>4} {'max w':>10} {'h':>8} {'measured ms':>12}  label"
        )
        for row in steps:
            # Commit events recorded by hand (or from a crashed machine)
            # may miss cost args; render a dash rather than crash the
            # whole report on one malformed event.
            step = row["superstep"] if row["superstep"] is not None else "-"
            w_max = row["w_max"]
            w_text = (
                f"{w_max:>10.1f}" if isinstance(w_max, (int, float)) else f"{'-':>10}"
            )
            h = row["h"] if row["h"] is not None else "-"
            lines.append(
                f"    {step:>4} {w_text} "
                f"{h:>8} {row['measured_s'] * 1e3:>12.3f}  {row['label']}"
            )
    if len(lines) == 1:
        lines.append("  (nothing recorded)")
    return "\n".join(lines)


# -- dispatch and validation --------------------------------------------------


def write_trace(
    trace: Trace, path: Union[str, Path], format: Optional[str] = None
) -> Path:
    """Write ``trace`` to ``path`` in ``format`` (``chrome``, ``jsonl``
    or ``summary``); with no explicit format the suffix decides
    (``.jsonl`` -> jsonl, ``.txt`` -> summary, else Chrome JSON)."""
    path = Path(path)
    if format is None:
        format = {".jsonl": "jsonl", ".txt": "summary"}.get(
            path.suffix.lower(), "chrome"
        )
    if format == "chrome":
        return write_chrome(trace, path)
    if format == "jsonl":
        return write_jsonl(trace, path)
    if format == "summary":
        return _atomic_write_text(path, summarize(trace) + "\n")
    raise ValueError(
        f"unknown trace format {format!r} (choose from {', '.join(TRACE_FORMATS)})"
    )


def validate_chrome_trace(source: Union[str, Path, Dict[str, Any]]) -> int:
    """Validate a Chrome trace-event JSON document.

    ``source`` is a parsed document, a JSON string, or a path to one.
    Checks the required keys on every event, the phase vocabulary, and
    that timestamps are monotone non-decreasing per ``(pid, tid)`` track.
    Returns the number of events; raises :class:`ValueError` (with the
    offending event) on any violation.  This is the check the CI trace
    job runs on the artifacts ``minibsml profile`` emits.
    """
    if isinstance(source, str) and source.lstrip().startswith(("{", "[")):
        data = json.loads(source)
    elif isinstance(source, (str, Path)):
        data = json.loads(Path(source).read_text(encoding="utf-8"))
    else:
        data = source
    if not isinstance(data, dict) or not isinstance(data.get("traceEvents"), list):
        raise ValueError("not a Chrome trace: missing top-level 'traceEvents' list")
    events = data["traceEvents"]
    if not events:
        raise ValueError("empty trace: no events")
    last_ts: Dict[Tuple[int, int], float] = {}
    for index, entry in enumerate(events):
        # Identify the offending record by index *and* name in every
        # message, so a failure in a thousand-event artifact points
        # straight at the culprit.
        label = f"event {index} ({entry.get('name', '<unnamed>')!r})"
        for key in ("name", "ph", "pid", "tid", "ts"):
            if key not in entry:
                raise ValueError(f"{label} is missing required key {key!r}: {entry}")
        if entry["ph"] not in ("X", "i", "I", "M", "B", "E", "C"):
            raise ValueError(f"{label} has unknown phase {entry['ph']!r}")
        if not isinstance(entry["ts"], (int, float)) or entry["ts"] < 0:
            raise ValueError(f"{label} has a bad timestamp: {entry['ts']!r}")
        if entry["ph"] == "X":
            if not isinstance(entry.get("dur"), (int, float)) or entry["dur"] < 0:
                raise ValueError(
                    f"complete {label} needs a non-negative 'dur': {entry}"
                )
        if entry["ph"] == "M":
            continue
        key = (entry["pid"], entry["tid"])
        if entry["ts"] < last_ts.get(key, 0.0):
            raise ValueError(
                f"{label} breaks per-track ts monotonicity on {key}: "
                f"{entry['ts']} < {last_ts[key]}"
            )
        last_ts[key] = entry["ts"]
    return len(events)
