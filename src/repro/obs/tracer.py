"""Structured tracing for the BSP machine and the inference pipeline.

Where :mod:`repro.perf` answers *how much* (counters, accumulated
timers, cache hit rates), this module answers *when and where*: it
records :class:`TraceRecord` entries — **spans** (a name, a start
timestamp and a duration) and **instant events** (a name and a
timestamp) — laid out on named **tracks**:

* one track per BSP process id (``proc 0`` ... ``proc p-1``) carrying
  the per-process task lifecycle of each computation phase, plus any
  fault injected into that process;
* a ``machine`` track carrying the superstep phases themselves
  (compute / exchange / barrier), superstep commits with their
  committed :class:`~repro.bsp.cost.BspCost` row, retries and
  rollbacks;
* an ``inference`` track carrying per-judgment spans of the type
  inferencer and the ``Solve``/unification work under them.

Collection follows the exact opt-in, stack-shaped discipline of
:mod:`repro.perf.counters`: :func:`trace` pushes a :class:`Trace` onto a
**context-local** stack (a :class:`contextvars.ContextVar`), every
instrumentation point guards itself with :func:`is_tracing` (one
truthiness test when disabled — cheap enough for hot loops to call
unconditionally), and finished records are appended to *all* active
collectors, so nested scopes each see their own copy.  Context-locality
keeps concurrent requests of the long-running service from interleaving
their spans into each other's traces: a trace window opened on one
thread (or asyncio task) collects only that thread of control's records,
while single-threaded use behaves exactly like the old module stack.

Timestamps are ``time.perf_counter()`` values — monotonic, and on this
platform system-wide, so worker-measured task timings and
coordinator-measured phase spans share one timeline.  Exporters
(:mod:`repro.obs.export`) normalize them against the collector's
``epoch``.

**Abstract versus measured.**  Every record separates what is
*deterministic* about an execution (span names, tracks, superstep
indices, abstract op counts, h-relations, fault outcomes) from what is
*measured* (timestamps, durations, wall-clock seconds, backend names).
:meth:`Trace.abstract_signature` projects a trace onto its deterministic
part: records whose name starts with ``backend.`` (pickling fallbacks,
pool recycling — legitimate per-backend behaviour) are dropped, and arg
keys in :data:`NONABSTRACT_ARGS` are filtered out.  The differential
conformance harness (:mod:`repro.testing.differential`) demands that
this signature be bit-identical across execution backends — the tracing
analogue of comparing :class:`~repro.bsp.cost.BspCost` tables exactly.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

#: The track carrying superstep phases, commits, retries and rollbacks.
MACHINE_TRACK = "machine"

#: The track carrying typing judgments, Solve checks and unification.
INFERENCE_TRACK = "inference"

#: Arg keys that carry measured (timing- or backend-dependent) data and
#: are therefore excluded from :meth:`Trace.abstract_signature`.
NONABSTRACT_ARGS = frozenset({"seconds", "ms", "backend", "cause"})

#: Record-name prefixes whose records are backend-specific lifecycle
#: (inline fallbacks, pool recycling) and excluded from the signature.
NONABSTRACT_PREFIXES = ("backend.",)


def process_track(proc: int) -> str:
    """The track name of BSP process ``proc``."""
    return f"proc {proc}"


@dataclass(frozen=True)
class TraceRecord:
    """One span (``dur`` is a duration in seconds) or instant event
    (``dur`` is None).  ``ts`` is an absolute ``perf_counter`` value;
    ``args`` is a name-sorted tuple of key/value pairs so records are
    hashable and structurally comparable."""

    name: str
    track: str
    ts: float
    dur: Optional[float] = None
    args: Tuple[Tuple[str, Any], ...] = ()

    @property
    def is_span(self) -> bool:
        return self.dur is not None

    def arg(self, key: str, default: Any = None) -> Any:
        for name, value in self.args:
            if name == key:
                return value
        return default

    def args_dict(self) -> Dict[str, Any]:
        return dict(self.args)

    def abstract(self) -> Optional[Tuple[str, str, Tuple[Tuple[str, Any], ...]]]:
        """The deterministic projection of this record, or None when the
        record itself is backend-specific (``backend.*`` lifecycle)."""
        if self.name.startswith(NONABSTRACT_PREFIXES):
            return None
        kept = tuple(
            (key, value) for key, value in self.args if key not in NONABSTRACT_ARGS
        )
        return (self.name, self.track, kept)


@dataclass
class Trace:
    """One collection window of trace records.

    ``epoch`` anchors the window: exporters subtract it so timelines
    start at zero.  Records are appended in *program order* by the
    coordinating thread (the machine's superstep loop, the inferencer's
    traversal), which is what makes :meth:`abstract_signature`
    order-deterministic across execution backends.
    """

    epoch: float = field(default_factory=time.perf_counter)
    records: List[TraceRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def spans(self, name: Optional[str] = None) -> List[TraceRecord]:
        """All spans, optionally filtered by exact name."""
        return [
            record
            for record in self.records
            if record.is_span and (name is None or record.name == name)
        ]

    def events(self, name: Optional[str] = None) -> List[TraceRecord]:
        """All instant events, optionally filtered by exact name."""
        return [
            record
            for record in self.records
            if not record.is_span and (name is None or record.name == name)
        ]

    def tracks(self) -> List[str]:
        """Track names in canonical display order: machine first, then
        the process tracks in numeric order, then inference, then any
        other track alphabetically."""
        seen = {record.track for record in self.records}
        ordered: List[str] = []
        if MACHINE_TRACK in seen:
            ordered.append(MACHINE_TRACK)
        procs = sorted(
            (int(track.split()[1]), track)
            for track in seen
            if track.startswith("proc ") and track.split()[1].isdigit()
        )
        ordered.extend(track for _, track in procs)
        if INFERENCE_TRACK in seen:
            ordered.append(INFERENCE_TRACK)
        ordered.extend(
            sorted(track for track in seen if track not in set(ordered))
        )
        return ordered

    def abstract_signature(self) -> Tuple[Tuple[str, str, Tuple], ...]:
        """The deterministic projection of the whole trace: per record in
        append order, ``(name, track, abstract args)`` — timestamps,
        durations, measured seconds and backend identity excluded.  Two
        runs of the same program on different backends must produce equal
        signatures (the trace-conformance check)."""
        projected = (record.abstract() for record in self.records)
        return tuple(entry for entry in projected if entry is not None)


#: Context-local stack of active collectors (usually empty or a single
#: entry).  An immutable tuple, so pushes/pops are plain set() calls and
#: concurrent contexts never observe a half-mutated stack.
_ACTIVE: ContextVar[Tuple[Trace, ...]] = ContextVar(
    "repro_obs_active", default=()
)


def _push(collector: Trace) -> None:
    _ACTIVE.set(_ACTIVE.get() + (collector,))


def _pop(collector: Trace) -> None:
    active = _ACTIVE.get()
    if collector in active:
        _ACTIVE.set(tuple(entry for entry in active if entry is not collector))


#: Module-global record sinks.  Unlike the context-local collectors a
#: sink sees every record of the whole process — it is how the metrics
#: aggregation layer (:mod:`repro.obs.metrics`) observes superstep and
#: inference spans across all concurrent requests of the service while
#: each request's trace window stays isolated.  An immutable tuple for
#: the same torn-read-free reason as ``_ACTIVE``.
_SINKS: Tuple[Callable[[TraceRecord], None], ...] = ()


def add_sink(sink: Callable[[TraceRecord], None]) -> None:
    """Register a process-global record sink (idempotent)."""
    global _SINKS
    if sink not in _SINKS:
        _SINKS = _SINKS + (sink,)


def remove_sink(sink: Callable[[TraceRecord], None]) -> None:
    """Unregister a sink previously added with :func:`add_sink`."""
    global _SINKS
    if sink in _SINKS:
        _SINKS = tuple(entry for entry in _SINKS if entry is not sink)


def is_tracing() -> bool:
    """True when any consumer wants records: a context-local collector
    in this context, or a process-global sink."""
    return bool(_ACTIVE.get()) or bool(_SINKS)


def is_active(collector: Trace) -> bool:
    """True when ``collector`` is currently collecting in this context."""
    return collector in _ACTIVE.get()


def record(
    name: str,
    track: str,
    ts: float,
    dur: Optional[float] = None,
    **args: Any,
) -> None:
    """Append a finished record to every active collector and sink."""
    active = _ACTIVE.get()
    sinks = _SINKS
    if not active and not sinks:
        return
    entry = TraceRecord(name, track, ts, dur, tuple(sorted(args.items())))
    for trace_ in active:
        trace_.records.append(entry)
    for sink in sinks:
        try:
            sink(entry)
        except Exception:
            # A broken metrics sink must never take the machine down.
            pass


def event(name: str, track: str, **args: Any) -> None:
    """Record an instant event at the current time (no-op when inactive)."""
    if not is_tracing():
        return
    record(name, track, time.perf_counter(), None, **args)


@contextmanager
def span(name: str, track: str, **args: Any) -> Iterator[Optional[Dict[str, Any]]]:
    """Record the enclosed block as a span (no-op when inactive).

    Yields a mutable dict when tracing is active (None otherwise) so the
    block can attach args that are only known at the end::

        with obs.span("superstep.exchange", obs.MACHINE_TRACK) as extra:
            relation = ...
            if extra is not None:
                extra["h"] = relation.h

    The span is recorded even when the block raises — a failed phase is
    exactly what a chaos trace needs to show.
    """
    if not is_tracing():
        yield None
        return
    extra: Dict[str, Any] = {}
    start = time.perf_counter()
    try:
        yield extra
    finally:
        record(name, track, start, time.perf_counter() - start, **{**args, **extra})


@contextmanager
def trace() -> Iterator[Trace]:
    """Collect trace records for the enclosed block."""
    collector = Trace()
    _push(collector)
    try:
        yield collector
    finally:
        _pop(collector)


def start() -> Trace:
    """Begin an open-ended collection window (REPL sessions).

    The returned trace accumulates until :func:`stop` is called; it may
    be exported live at any point.  The window is bound to the calling
    context: code running on other threads or tasks does not report
    into it.
    """
    collector = Trace()
    _push(collector)
    return collector


def stop(collector: Trace) -> Trace:
    """End a window opened with :func:`start` (idempotent)."""
    _pop(collector)
    return collector


def resume(collector: Trace) -> Trace:
    """Re-activate a window previously paused with :func:`stop`.

    New records append after the ones already collected (the REPL's
    ``:trace on`` after ``:trace off``); idempotent when already active.
    """
    if collector not in _ACTIVE.get():
        _push(collector)
    return collector
