"""Structured tracing and trace export for the BSP + inference pipeline.

See :mod:`repro.obs.tracer` for the span/event model and the collection
discipline, :mod:`repro.obs.export` for the Chrome-trace / JSONL /
summary exporters.  Typical use::

    from repro import obs

    with obs.trace() as t:
        run_program("bcast 2 (mkpar (fun i -> i * i))")
    obs.write_trace(t, "out.json")          # load in Perfetto
    print(obs.summarize(t))                 # latency histograms
"""

from repro.obs.tracer import (
    INFERENCE_TRACK,
    MACHINE_TRACK,
    NONABSTRACT_ARGS,
    NONABSTRACT_PREFIXES,
    Trace,
    TraceRecord,
    event,
    is_tracing,
    process_track,
    record,
    resume,
    span,
    start,
    stop,
    trace,
)
from repro.obs.export import (
    TRACE_FORMATS,
    SpanHistogram,
    histograms,
    summarize,
    superstep_rows,
    to_chrome,
    to_jsonl,
    validate_chrome_trace,
    write_chrome,
    write_jsonl,
    write_trace,
)

__all__ = [
    "INFERENCE_TRACK",
    "MACHINE_TRACK",
    "NONABSTRACT_ARGS",
    "NONABSTRACT_PREFIXES",
    "SpanHistogram",
    "TRACE_FORMATS",
    "Trace",
    "TraceRecord",
    "event",
    "histograms",
    "is_tracing",
    "process_track",
    "record",
    "resume",
    "span",
    "start",
    "stop",
    "summarize",
    "superstep_rows",
    "to_chrome",
    "to_jsonl",
    "trace",
    "validate_chrome_trace",
    "write_chrome",
    "write_jsonl",
    "write_trace",
]
