"""Structured tracing, trace export, live metrics and BSP analytics.

See :mod:`repro.obs.tracer` for the span/event model and the collection
discipline, :mod:`repro.obs.export` for the Chrome-trace / JSONL /
summary exporters, :mod:`repro.obs.metrics` for the process-global
Prometheus-style aggregation layer, and :mod:`repro.obs.analyze` for
post-hoc critical-path / load-balance / cost-calibration analysis of
saved traces.  Typical use::

    from repro import obs

    with obs.trace() as t:
        run_program("bcast 2 (mkpar (fun i -> i * i))")
    obs.write_trace(t, "out.json")          # load in Perfetto
    print(obs.summarize(t))                 # latency histograms
    print(obs.analyze_trace(t).render())    # critical path + g/l fit
"""

from repro.obs.tracer import (
    INFERENCE_TRACK,
    MACHINE_TRACK,
    NONABSTRACT_ARGS,
    NONABSTRACT_PREFIXES,
    Trace,
    TraceRecord,
    add_sink,
    event,
    is_active,
    is_tracing,
    process_track,
    record,
    remove_sink,
    resume,
    span,
    start,
    stop,
    trace,
)
from repro.obs.export import (
    TRACE_FORMATS,
    SpanHistogram,
    histograms,
    summarize,
    superstep_rows,
    to_chrome,
    to_jsonl,
    validate_chrome_trace,
    write_chrome,
    write_jsonl,
    write_trace,
)
from repro.obs.analyze import (
    ANALYZE_FORMATS,
    AnalysisReport,
    CalibrationFit,
    DriftRow,
    SuperstepBreakdown,
    analyze_trace,
    load_trace,
    synthetic_trace,
)
from repro.obs import metrics

__all__ = [
    "ANALYZE_FORMATS",
    "AnalysisReport",
    "CalibrationFit",
    "DriftRow",
    "INFERENCE_TRACK",
    "MACHINE_TRACK",
    "NONABSTRACT_ARGS",
    "NONABSTRACT_PREFIXES",
    "SpanHistogram",
    "SuperstepBreakdown",
    "TRACE_FORMATS",
    "Trace",
    "TraceRecord",
    "add_sink",
    "analyze_trace",
    "event",
    "histograms",
    "is_active",
    "is_tracing",
    "load_trace",
    "metrics",
    "process_track",
    "record",
    "remove_sink",
    "resume",
    "span",
    "start",
    "stop",
    "summarize",
    "superstep_rows",
    "synthetic_trace",
    "to_chrome",
    "to_jsonl",
    "trace",
    "validate_chrome_trace",
    "write_chrome",
    "write_jsonl",
    "write_trace",
]
