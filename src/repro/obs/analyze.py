"""Post-hoc BSP analytics over saved traces.

The trace layer records what *happened*; this module reads a saved trace
back (the JSONL or Chrome JSON files :mod:`repro.obs.export` writes) and
answers the questions the BSP cost model ``W + H·g + S·l`` poses:

* **critical path** — how the program's wall time decomposes into
  compute / exchange / barrier per superstep, and which phase dominates;
* **load balance** — per-process measured compute seconds, the imbalance
  factor (slowest over mean — exactly the ``w_max``-vs-``ΣW/p`` gap the
  cost model charges for), and the straggler process;
* **traffic** — the p×p word matrix summed over every h-relation, from
  the deterministic ``matrix`` arg each ``superstep.exchange`` span
  carries;
* **calibration** — a least-squares fit of *effective* ``g`` and ``l``
  from the measured exchange+barrier time of each synchronized
  superstep: with communication time modelled as ``t_comm(s) ≈ g·h(s) +
  l``, the slope of the ``(h, t_comm)`` regression is ``g_eff``
  (seconds/word) and the intercept is ``l_eff`` (seconds).  A second
  single-parameter fit maps abstract work units to seconds
  (``t_compute(s) ≈ c·w_max(s)``, least squares through the origin).
  The **drift table** then replays the model against the measurement:
  per superstep, predicted ``c·w_max + g·h + l`` next to the measured
  phase total, with the relative drift — the continuously-checkable form
  of the ROADMAP's "static cost inference checked against the simulator"
  item.

``g``/``l`` here are in *seconds* (per word / per barrier), unlike the
abstract :class:`~repro.bsp.params.BspParams` which are in work units;
pass the machine's configured values converted to seconds to compare
against the fit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.tracer import MACHINE_TRACK, Trace, TraceRecord, process_track

#: Formats :func:`load_trace` understands.
ANALYZE_FORMATS = ("chrome", "jsonl")

_PHASES = ("compute", "exchange", "barrier")


# -- loading ------------------------------------------------------------------


def load_trace(
    source: Union[str, Path], format: Optional[str] = None
) -> Trace:
    """Read a saved trace back into a :class:`Trace`.

    ``format`` is ``"jsonl"`` or ``"chrome"``; with None the suffix
    decides (``.jsonl`` -> jsonl, anything else -> Chrome JSON).  The
    reconstructed trace has epoch 0 and relative timestamps — exactly
    what the exporters wrote.  Raises :class:`ValueError` (naming the
    offending line or event) on malformed input.
    """
    path = Path(source)
    if format is None:
        format = "jsonl" if path.suffix.lower() == ".jsonl" else "chrome"
    if format not in ANALYZE_FORMATS:
        raise ValueError(
            f"unknown trace format {format!r} "
            f"(choose from {', '.join(ANALYZE_FORMATS)})"
        )
    text = path.read_text(encoding="utf-8")
    if format == "jsonl":
        return _load_jsonl(text)
    return _load_chrome(text)


def _freeze_args(args: Any, line_label: str) -> Tuple[Tuple[str, Any], ...]:
    if args is None:
        return ()
    if not isinstance(args, dict):
        raise ValueError(f"{line_label}: 'args' must be an object, got {args!r}")
    # JSON round-trips tuples (the exchange matrix) as lists; keep them
    # as-is — the analyses index rather than hash them.
    return tuple(sorted(args.items()))


def _load_jsonl(text: str) -> Trace:
    trace = Trace(epoch=0.0)
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        label = f"line {line_number}"
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{label}: not valid JSON ({exc})") from None
        if not isinstance(obj, dict):
            raise ValueError(f"{label}: expected an object, got {obj!r}")
        for key in ("name", "track", "ts"):
            if key not in obj:
                raise ValueError(f"{label}: missing required key {key!r}")
        dur = obj.get("dur")
        if dur is not None and not isinstance(dur, (int, float)):
            raise ValueError(f"{label}: 'dur' must be a number or null")
        trace.records.append(
            TraceRecord(
                str(obj["name"]),
                str(obj["track"]),
                float(obj["ts"]),
                float(dur) if dur is not None else None,
                _freeze_args(obj.get("args"), label),
            )
        )
    return trace


def _load_chrome(text: str) -> Trace:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not valid JSON ({exc})") from None
    if not isinstance(data, dict) or not isinstance(data.get("traceEvents"), list):
        raise ValueError("not a Chrome trace: missing top-level 'traceEvents' list")
    # First pass: recover the tid -> track map from thread_name metadata.
    tracks: Dict[Any, str] = {}
    for entry in data["traceEvents"]:
        if (
            isinstance(entry, dict)
            and entry.get("ph") == "M"
            and entry.get("name") == "thread_name"
        ):
            name = (entry.get("args") or {}).get("name")
            if name:
                tracks[entry.get("tid")] = str(name)
    trace = Trace(epoch=0.0)
    for index, entry in enumerate(data["traceEvents"]):
        if not isinstance(entry, dict):
            raise ValueError(f"event {index}: expected an object, got {entry!r}")
        phase = entry.get("ph")
        if phase == "M":
            continue
        label = f"event {index} ({entry.get('name', '<unnamed>')!r})"
        if phase not in ("X", "i", "I"):
            raise ValueError(f"{label}: unsupported phase {phase!r}")
        if "ts" not in entry:
            raise ValueError(f"{label}: missing required key 'ts'")
        track = tracks.get(entry.get("tid"), f"tid {entry.get('tid')}")
        dur = None
        if phase == "X":
            if not isinstance(entry.get("dur"), (int, float)):
                raise ValueError(f"{label}: complete event needs a numeric 'dur'")
            dur = entry["dur"] / 1e6
        trace.records.append(
            TraceRecord(
                str(entry.get("name", "")),
                track,
                float(entry["ts"]) / 1e6,
                dur,
                _freeze_args(entry.get("args"), label),
            )
        )
    return trace


# -- report dataclasses -------------------------------------------------------


@dataclass(frozen=True)
class SuperstepBreakdown:
    """Measured phase durations of one superstep (seconds; a phase the
    trace did not record is 0)."""

    index: int
    label: str
    compute: float
    exchange: float
    barrier: float
    w_max: Optional[float] = None
    h: Optional[int] = None

    @property
    def total(self) -> float:
        return self.compute + self.exchange + self.barrier


@dataclass(frozen=True)
class CalibrationFit:
    """Effective BSP parameters fitted from measured spans.

    ``g_eff`` — seconds per word (slope of the comm regression), None
    when every superstep moved the same ``h`` (the regression is
    degenerate: slope unidentifiable).  ``l_eff`` — seconds per barrier
    (intercept).  ``compute_scale`` — seconds per abstract work unit,
    None when no superstep carried both ``w_max`` and a compute span.
    ``points`` is the number of (h, t_comm) observations behind the fit.
    """

    g_eff: Optional[float]
    l_eff: Optional[float]
    compute_scale: Optional[float]
    points: int
    notes: Tuple[str, ...] = ()


@dataclass(frozen=True)
class DriftRow:
    """One superstep of the modelled-versus-measured comparison."""

    index: int
    label: str
    predicted: float
    measured: float

    @property
    def drift(self) -> float:
        """Relative drift ``(measured - predicted) / predicted`` (0 when
        the prediction is 0)."""
        if self.predicted == 0:
            return 0.0
        return (self.measured - self.predicted) / self.predicted


@dataclass
class AnalysisReport:
    """Everything :func:`analyze_trace` computed, renderable as text."""

    supersteps: List[SuperstepBreakdown] = field(default_factory=list)
    phase_totals: Dict[str, float] = field(default_factory=dict)
    task_seconds: Dict[int, float] = field(default_factory=dict)
    traffic: List[List[int]] = field(default_factory=list)
    fit: Optional[CalibrationFit] = None
    drift: List[DriftRow] = field(default_factory=list)
    #: The g/l the drift prediction used (configured if given, else fitted).
    used_g: Optional[float] = None
    used_l: Optional[float] = None

    @property
    def critical_path(self) -> float:
        """Total measured superstep seconds (compute + exchange + barrier)."""
        return sum(self.phase_totals.values())

    @property
    def dominant_phase(self) -> Optional[str]:
        if not self.phase_totals or self.critical_path == 0:
            return None
        return max(_PHASES, key=lambda phase: self.phase_totals.get(phase, 0.0))

    @property
    def imbalance(self) -> Optional[float]:
        """Slowest process's compute seconds over the mean (1.0 = perfectly
        balanced), None without per-process task records."""
        if not self.task_seconds:
            return None
        values = list(self.task_seconds.values())
        mean = sum(values) / len(values)
        if mean == 0:
            return None
        return max(values) / mean

    @property
    def straggler(self) -> Optional[int]:
        if not self.task_seconds:
            return None
        return max(self.task_seconds, key=lambda proc: self.task_seconds[proc])

    def render(self) -> str:
        lines = [
            f"trace analysis: {len(self.supersteps)} supersteps, "
            f"critical path {self.critical_path * 1e3:.3f} ms"
        ]
        if self.supersteps:
            lines.append("  superstep critical path (ms):")
            lines.append(
                f"    {'step':>4} {'compute':>10} {'exchange':>10} "
                f"{'barrier':>10} {'total':>10}  label"
            )
            for step in self.supersteps:
                lines.append(
                    f"    {step.index:>4} {step.compute * 1e3:>10.3f} "
                    f"{step.exchange * 1e3:>10.3f} {step.barrier * 1e3:>10.3f} "
                    f"{step.total * 1e3:>10.3f}  {step.label}"
                )
            totals = self.phase_totals
            lines.append(
                "    phase totals: "
                + ", ".join(
                    f"{phase} {totals.get(phase, 0.0) * 1e3:.3f} ms"
                    for phase in _PHASES
                )
                + (
                    f" — dominated by {self.dominant_phase}"
                    if self.dominant_phase
                    else ""
                )
            )
        if self.task_seconds:
            lines.append("  per-process compute (load balance):")
            for proc in sorted(self.task_seconds):
                marker = "  <- straggler" if proc == self.straggler else ""
                lines.append(
                    f"    proc {proc:<4} {self.task_seconds[proc] * 1e3:>10.3f} ms"
                    f"{marker}"
                )
            imbalance = self.imbalance
            if imbalance is not None:
                lines.append(f"    imbalance factor (max/mean): {imbalance:.3f}")
        if self.traffic and any(any(row) for row in self.traffic):
            lines.append("  h-relation traffic matrix (words, src -> dst):")
            p = len(self.traffic)
            header = "         " + " ".join(f"{j:>8}" for j in range(p))
            lines.append(header)
            for i, row in enumerate(self.traffic):
                lines.append(
                    f"    {i:>4} " + " ".join(f"{int(w):>8}" for w in row)
                )
        if self.fit is not None:
            fit = self.fit
            lines.append("  calibration (least squares over measured spans):")
            g_text = (
                f"{fit.g_eff * 1e6:.4f} us/word"
                if fit.g_eff is not None
                else "unidentifiable (h constant)"
            )
            l_text = (
                f"{fit.l_eff * 1e3:.4f} ms/barrier"
                if fit.l_eff is not None
                else "-"
            )
            c_text = (
                f"{fit.compute_scale * 1e6:.4f} us/unit"
                if fit.compute_scale is not None
                else "-"
            )
            lines.append(f"    g_eff = {g_text}")
            lines.append(f"    l_eff = {l_text}")
            lines.append(f"    compute scale = {c_text}  ({fit.points} points)")
            for note in fit.notes:
                lines.append(f"    note: {note}")
        if self.drift:
            lines.append("  drift table (modelled vs measured, ms):")
            lines.append(
                f"    {'step':>4} {'predicted':>11} {'measured':>11} "
                f"{'drift':>8}  label"
            )
            for row in self.drift:
                lines.append(
                    f"    {row.index:>4} {row.predicted * 1e3:>11.3f} "
                    f"{row.measured * 1e3:>11.3f} {row.drift:>+7.1%}  {row.label}"
                )
        if len(lines) == 1:
            lines.append("  (no superstep records in this trace)")
        return "\n".join(lines)


# -- the analyses -------------------------------------------------------------


def _linear_fit(
    points: Sequence[Tuple[float, float]]
) -> Tuple[Optional[float], float]:
    """Least-squares ``y ≈ slope·x + intercept``; slope is None when the
    x values are constant (then intercept is the plain mean of y)."""
    n = len(points)
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    var = sum((x - mean_x) ** 2 for x, _ in points)
    if var == 0:
        return None, mean_y
    cov = sum((x - mean_x) * (y - mean_y) for x, y in points)
    slope = cov / var
    return slope, mean_y - slope * mean_x


def analyze_trace(
    trace: Trace, g: Optional[float] = None, l: Optional[float] = None
) -> AnalysisReport:
    """Run every analysis over ``trace``.

    ``g``/``l`` are the machine's *configured* parameters in seconds
    (per word / per barrier); when both are given the drift table
    predicts with them (and the fit shows how far reality drifted),
    otherwise the fitted values predict (and drift measures residual
    model error).
    """
    report = AnalysisReport()

    # Phase breakdown per superstep, joined on the superstep index.
    phases: Dict[int, Dict[str, float]] = {}
    labels: Dict[int, str] = {}
    for record in trace.records:
        if record.is_span and record.name.startswith("superstep."):
            index = record.arg("superstep")
            if index is None:
                continue
            phase = record.name[len("superstep.") :]
            bucket = phases.setdefault(int(index), {})
            bucket[phase] = bucket.get(phase, 0.0) + record.dur
            label = record.arg("label")
            if label:
                labels.setdefault(int(index), str(label))

    # Commit events carry the abstract cost row (w_max, h).
    committed: Dict[int, Tuple[Optional[float], Optional[int]]] = {}
    for record in trace.events("superstep"):
        index = record.arg("superstep")
        if index is None:
            continue
        committed[int(index)] = (record.arg("w_max"), record.arg("h"))
        label = record.arg("label")
        if label:
            labels.setdefault(int(index), str(label))

    for index in sorted(set(phases) | set(committed)):
        bucket = phases.get(index, {})
        w_max, h = committed.get(index, (None, None))
        report.supersteps.append(
            SuperstepBreakdown(
                index,
                labels.get(index, ""),
                bucket.get("compute", 0.0),
                bucket.get("exchange", 0.0),
                bucket.get("barrier", 0.0),
                w_max,
                h,
            )
        )
    for phase in _PHASES:
        report.phase_totals[phase] = sum(
            getattr(step, phase) for step in report.supersteps
        )

    # Per-process measured compute seconds from the task spans.
    for record in trace.records:
        if record.is_span and record.name == "task":
            proc = record.arg("proc")
            if proc is not None:
                report.task_seconds[int(proc)] = (
                    report.task_seconds.get(int(proc), 0.0) + record.dur
                )

    # Traffic matrix: elementwise sum of every exchange's matrix arg.
    for record in trace.spans("superstep.exchange"):
        matrix = record.arg("matrix")
        if not matrix:
            continue
        size = len(matrix)
        if len(report.traffic) < size:
            grown = [[0] * size for _ in range(size)]
            for i, row in enumerate(report.traffic):
                for j, words in enumerate(row):
                    grown[i][j] = words
            report.traffic = grown
        for i, row in enumerate(matrix):
            for j, words in enumerate(row):
                report.traffic[i][j] += int(words)

    # Calibration: t_comm(s) = exchange + barrier seconds against h(s).
    notes: List[str] = []
    comm_points = [
        (float(step.h), step.exchange + step.barrier)
        for step in report.supersteps
        if step.h is not None and (step.exchange or step.barrier)
    ]
    g_eff: Optional[float] = None
    l_eff: Optional[float] = None
    if comm_points:
        g_eff, l_eff = _linear_fit(comm_points)
        if g_eff is None:
            notes.append(
                "all supersteps moved the same h; g is unidentifiable and "
                "l_eff absorbs the whole mean communication time"
            )
        elif g_eff < 0:
            notes.append(
                "fitted g is negative (noise dominates); treat with suspicion"
            )
    compute_points = [
        (float(step.w_max), step.compute)
        for step in report.supersteps
        if step.w_max and step.compute
    ]
    compute_scale: Optional[float] = None
    if compute_points:
        denominator = sum(w * w for w, _ in compute_points)
        if denominator:
            compute_scale = (
                sum(w * t for w, t in compute_points) / denominator
            )
    if comm_points or compute_points:
        report.fit = CalibrationFit(
            g_eff, l_eff, compute_scale, len(comm_points), tuple(notes)
        )

    # Drift table: predict with configured g/l when both given, else the fit.
    use_g = g if g is not None else g_eff
    use_l = l if l is not None else l_eff
    report.used_g, report.used_l = use_g, use_l
    if use_l is not None:
        for step in report.supersteps:
            if step.h is None:
                continue
            predicted = use_l + (use_g or 0.0) * step.h
            if compute_scale is not None and step.w_max:
                predicted += compute_scale * step.w_max
            report.drift.append(
                DriftRow(step.index, step.label, predicted, step.total)
            )
    return report


# -- synthetic traces ---------------------------------------------------------


def synthetic_trace(
    p: int = 4,
    g: float = 2e-6,
    l: float = 1e-3,
    compute_scale: float = 1e-6,
    steps: Sequence[Tuple[float, int]] = ((1000.0, 100), (4000.0, 400), (2000.0, 250)),
) -> Trace:
    """A trace that follows the cost model *exactly*: superstep ``s``
    with abstract work ``w`` and h-relation ``h`` takes
    ``compute_scale·w`` compute seconds, ``g·h`` exchange seconds and
    ``l`` barrier seconds.  :func:`analyze_trace` on this trace must
    recover ``g``, ``l`` and ``compute_scale`` to machine precision —
    the calibration acceptance test, and a fixture for drift-table docs.
    """
    trace = Trace(epoch=0.0)
    now = 0.0

    def add(name: str, track: str, dur: Optional[float], **args: Any) -> None:
        nonlocal now
        trace.records.append(
            TraceRecord(name, track, now, dur, tuple(sorted(args.items())))
        )
        if dur is not None:
            now += dur

    for index, (work, h) in enumerate(steps):
        compute = compute_scale * work
        share = compute / p
        add(
            "superstep.compute",
            MACHINE_TRACK,
            compute,
            superstep=index,
            procs=p,
            backend="synthetic",
        )
        for proc in range(p):
            add(
                "task",
                process_track(proc),
                # A deliberately imbalanced split: proc 0 is the straggler.
                share * (1.5 if proc == 0 else 1.0),
                proc=proc,
                superstep=index,
                ops=int(work // p),
            )
        words = h  # one-word messages round-robin
        matrix = [[0] * p for _ in range(p)]
        remaining = words
        src = 0
        while remaining > 0:
            dst = (src + 1) % p
            matrix[src][dst] += 1
            remaining -= 1
            src = (src + 1) % p
        add(
            "superstep.exchange",
            MACHINE_TRACK,
            g * h,
            superstep=index,
            label=f"s{index}",
            h=h,
            words=words,
            matrix=tuple(tuple(row) for row in matrix),
        )
        add(
            "superstep.barrier",
            MACHINE_TRACK,
            l,
            superstep=index,
            label=f"s{index}",
        )
        add(
            "superstep",
            MACHINE_TRACK,
            None,
            superstep=index,
            w_max=work,
            h=h,
            words=words,
            label=f"s{index}",
        )
    return trace
