"""Scrape-time bridge from the perf layer to the metrics registry.

The solver-layer memoization caches (:func:`repro.perf.register_cache`)
and the hash-consing intern pools (:func:`repro.core.types.
intern_pool_stats`) already keep their own lifetime totals — the
``lru_cache``/:class:`~repro.perf.memo.BoundedMemo` bookkeeping.  Rather
than double-count every hit into the metrics registry on the hot path,
this bridge snapshots those totals *at scrape time*: :func:`cache_metrics`
is registered as a collector with the global
:class:`~repro.obs.metrics.MetricsRegistry` when metrics are enabled, so
each ``/v1/metrics`` render reads the current counts directly.

Cache hit/miss totals are exposed as counters (the underlying numbers
are monotone over the life of the process, modulo explicit
``clear_caches()`` in benchmarks — a scrape after that legitimately
shows a reset, which Prometheus-style consumers already handle) and
sizes as gauges.
"""

from __future__ import annotations

from typing import List

from repro.obs.metrics import MetricData, MetricSample
from repro.perf.counters import registered_caches


def cache_metrics() -> List[MetricData]:
    """Current solver-cache and intern-pool statistics as metric data."""
    calls = MetricData(
        "repro_solver_cache_requests_total",
        "counter",
        "Solver memoization cache lookups by cache and result.",
    )
    size = MetricData(
        "repro_solver_cache_size",
        "gauge",
        "Live entries per solver memoization cache.",
    )
    evictions = MetricData(
        "repro_solver_cache_evictions_total",
        "counter",
        "LRU evictions per solver memoization cache.",
    )
    for name, fn in sorted(registered_caches().items()):
        info = fn.cache_info()
        calls.samples.append(
            MetricSample("", (("cache", name), ("result", "hit")), info.hits)
        )
        calls.samples.append(
            MetricSample("", (("cache", name), ("result", "miss")), info.misses)
        )
        size.samples.append(MetricSample("", (("cache", name),), info.currsize))
        evictions.samples.append(
            MetricSample("", (("cache", name),), getattr(fn, "evictions", 0))
        )

    pools = MetricData(
        "repro_intern_pool_size",
        "gauge",
        "Live hash-consed nodes per intern pool.",
    )
    try:
        from repro.core.types import intern_pool_stats

        for pool_name, count in sorted(intern_pool_stats().items()):
            pools.samples.append(MetricSample("", (("pool", pool_name),), count))
    except Exception:
        # The scrape must not depend on the core layer being importable
        # (e.g. a stripped-down deployment exposing only the service).
        pass
    return [calls, evictions, pools, size]
