"""Bounded, eviction-counting memoization for the solver layer.

``functools.lru_cache`` served the solver caches well for one-shot CLI
runs, but it has two problems over a *server lifetime*:

* its entries hold **strong references to the interned key nodes**, so
  the weak hash-cons pools of :mod:`repro.core.types` and
  :mod:`repro.core.constraints` can never reclaim a node once any solver
  cache has seen it — across millions of served programs the pools grow
  without bound, bounded only by the product of every cache's maxsize;
* its evictions are **invisible**: ``cache_info()`` exposes hits and
  misses but not how many entries were displaced, so a production cache
  thrashing at its bound looks identical to one comfortably sized.

:class:`BoundedMemo` is a drop-in replacement with the same observable
surface (``cache_info()``, ``cache_clear()``, registration with
:func:`repro.perf.register_cache`) plus:

* an explicit, *runtime-resizable* LRU bound (:meth:`BoundedMemo.resize`
  — the service sizes the solver caches to its memory budget at boot);
* a monotonic ``evictions`` counter, reported as a delta by
  :class:`repro.perf.counters.CacheReport` and incremented under the
  ``cache.evict.<name>`` perf counter while a collection window is open.

Thread-safety follows ``lru_cache``'s discipline: lookups and inserts
take a short lock, the wrapped function runs **outside** the lock (so
recursive memoized functions like ``locality`` cannot deadlock), and a
value computed twice under a race is inserted once — harmless, because
every memoized function here is pure over immutable interned nodes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, NamedTuple, Optional

from repro.perf import counters


class CacheInfo(NamedTuple):
    """Shape-compatible with ``functools.lru_cache``'s ``cache_info()``."""

    hits: int
    misses: int
    maxsize: Optional[int]
    currsize: int


class BoundedMemo:
    """A bounded LRU memoizer over positional, hashable arguments."""

    __slots__ = (
        "__wrapped__",
        "__name__",
        "name",
        "_maxsize",
        "_data",
        "_lock",
        "_hits",
        "_misses",
        "evictions",
    )

    def __init__(
        self, fn: Callable[..., Any], maxsize: int, name: Optional[str] = None
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"BoundedMemo needs maxsize >= 1, got {maxsize}")
        self.__wrapped__ = fn
        self.__name__ = getattr(fn, "__name__", "memoized")
        self.name = name or self.__name__
        self._maxsize = maxsize
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self.evictions = 0

    @property
    def __doc__(self):  # pragma: no cover - introspection nicety
        return self.__wrapped__.__doc__

    def __call__(self, *args: Any) -> Any:
        key = args
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self._misses += 1
            else:
                self._data.move_to_end(key)
                self._hits += 1
                return value
        value = self.__wrapped__(*args)  # outside the lock: recursion-safe
        with self._lock:
            if key not in self._data:
                self._data[key] = value
                self._evict_locked()
        return value

    def _evict_locked(self) -> None:
        while len(self._data) > self._maxsize:
            self._data.popitem(last=False)
            self.evictions += 1
            counters.increment(f"cache.evict.{self.name}")

    def cache_info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(self._hits, self._misses, self._maxsize, len(self._data))

    def cache_clear(self) -> None:
        """Drop every entry (counters, including evictions, are kept)."""
        with self._lock:
            self._data.clear()

    def resize(self, maxsize: int) -> None:
        """Change the bound; a shrink evicts least-recently-used entries."""
        if maxsize < 1:
            raise ValueError(f"BoundedMemo needs maxsize >= 1, got {maxsize}")
        with self._lock:
            self._maxsize = maxsize
            self._evict_locked()

    def __repr__(self) -> str:
        info = self.cache_info()
        return (
            f"<BoundedMemo {self.name} size={info.currsize}/{info.maxsize} "
            f"hits={info.hits} misses={info.misses} evictions={self.evictions}>"
        )


def bounded_memo(
    maxsize: int, name: Optional[str] = None
) -> Callable[[Callable[..., Any]], BoundedMemo]:
    """Decorator form: ``@bounded_memo(4096, name="constraints.solve")``."""

    def wrap(fn: Callable[..., Any]) -> BoundedMemo:
        return BoundedMemo(fn, maxsize, name)

    return wrap


def resize_registered(maxsize: int, prefix: str = "") -> int:
    """Resize every registered :class:`BoundedMemo` whose name starts
    with ``prefix`` (all of them by default).  Returns how many caches
    were resized.  The service calls this at boot to fit the solver
    caches to its configured memory budget."""
    resized = 0
    for name, fn in counters.registered_caches().items():
        if isinstance(fn, BoundedMemo) and name.startswith(prefix):
            fn.resize(maxsize)
            resized += 1
    return resized
