"""Counters, timers and cache statistics for the inference pipeline.

The hot path of the reproduction is ``Solve`` — invoked at every
instantiation and generalization point — plus unification and the BSP
superstep engine.  This module gives all of them one cheap, explicit
observability surface:

* **counters** — monotonically increasing event counts (``solve`` calls,
  unification steps, supersteps simulated, words exchanged, ...);
* **timers** — wall-clock accumulated under a label via :func:`timed`;
* **cache statistics** — every memoization cache of the solver layer
  registers itself with :func:`register_cache`; a collector snapshots the
  ``functools.lru_cache`` bookkeeping on entry and reports hit/miss
  *deltas*, so nested or repeated collections stay accurate.

Collection is opt-in and stack-shaped: :func:`collect` pushes a
:class:`PerfStats` onto a **context-local** stack (a
:class:`contextvars.ContextVar`), every instrumentation point checks the
stack (one truthiness test when disabled — cheap enough for hot loops to
call unconditionally), and increments apply to *all* active collectors
so nested scopes each see their own totals.

Context-locality is what makes the stack safe under concurrency: two
requests served on different threads (or asyncio tasks) of the
long-running service each see only their own collectors, where a
module-global list would interleave every request's counters into every
window.  Within one thread of control the behaviour is identical to the
old module-level stack.

The design is invalidation-free by construction: every cached function is
keyed on hash-consed immutable nodes (see :mod:`repro.core.types` and
:mod:`repro.core.constraints`), so entries can never go stale — the only
eviction is the bounded LRU size.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Tuple

#: Registry of memoized functions: name -> lru_cache-wrapped callable.
_REGISTERED_CACHES: Dict[str, Callable[..., Any]] = {}

#: Context-local stack of active collectors (usually empty or a single
#: entry).  Stored as an immutable tuple so pushes/pops are plain set()
#: calls and concurrent contexts can never observe a half-mutated stack.
_ACTIVE: ContextVar[Tuple["PerfStats", ...]] = ContextVar(
    "repro_perf_active", default=()
)


def register_cache(name: str, fn: Callable[..., Any]) -> Callable[..., Any]:
    """Register an ``lru_cache``-wrapped function for cache reporting.

    Returns ``fn`` so it can be used as a decoration step.
    """
    if not hasattr(fn, "cache_info"):
        raise TypeError(f"cache {name!r} has no cache_info(); wrap with lru_cache")
    _REGISTERED_CACHES[name] = fn
    return fn


def registered_caches() -> Dict[str, Callable[..., Any]]:
    """A snapshot of the cache registry (name -> cached function)."""
    return dict(_REGISTERED_CACHES)


def clear_caches() -> None:
    """Empty every registered memoization cache (cold-start state).

    Only benchmarks and tests should need this; correctness never does,
    because all cached functions are pure over immutable interned nodes.
    """
    for fn in _REGISTERED_CACHES.values():
        fn.cache_clear()


def is_collecting() -> bool:
    """True when at least one collector is active in this context."""
    return bool(_ACTIVE.get())


def increment(name: str, by: float = 1) -> None:
    """Add ``by`` to counter ``name`` on every active collector."""
    active = _ACTIVE.get()
    if not active:
        return
    for stats in active:
        stats.counters[name] = stats.counters.get(name, 0) + by


def add_time(name: str, seconds: float) -> None:
    """Accumulate ``seconds`` under timer ``name`` on active collectors."""
    active = _ACTIVE.get()
    if not active:
        return
    for stats in active:
        stats.timers[name] = stats.timers.get(name, 0.0) + seconds


@contextmanager
def timed(name: str) -> Iterator[None]:
    """Time the enclosed block into timer ``name`` (no-op when inactive)."""
    if not _ACTIVE.get():
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        add_time(name, time.perf_counter() - start)


@dataclass
class CacheReport:
    """Hit/miss/eviction delta of one registered cache over a window.

    ``evictions`` is nonzero only for caches that expose an eviction
    count (:class:`repro.perf.memo.BoundedMemo`); plain ``lru_cache``
    functions report 0 — their evictions are invisible to the stdlib
    bookkeeping.
    """

    name: str
    hits: int
    misses: int
    size: int
    maxsize: int
    evictions: int = 0

    @property
    def calls(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of calls served from cache (0.0 when never called)."""
        return self.hits / self.calls if self.calls else 0.0


@dataclass
class PerfStats:
    """One collection window of counters, timers and cache deltas."""

    counters: Dict[str, float] = field(default_factory=dict)
    timers: Dict[str, float] = field(default_factory=dict)
    _cache_baseline: Dict[str, Tuple[int, int, int]] = field(default_factory=dict)

    def snapshot_caches(self) -> None:
        """Record the current hit/miss/eviction totals as the baseline."""
        for name, fn in _REGISTERED_CACHES.items():
            info = fn.cache_info()
            self._cache_baseline[name] = (
                info.hits,
                info.misses,
                getattr(fn, "evictions", 0),
            )

    def cache_reports(self) -> List[CacheReport]:
        """Per-cache hit/miss/eviction deltas since :meth:`snapshot_caches`."""
        reports = []
        for name, fn in sorted(_REGISTERED_CACHES.items()):
            info = fn.cache_info()
            base_hits, base_misses, base_evict = self._cache_baseline.get(
                name, (0, 0, 0)
            )
            reports.append(
                CacheReport(
                    name,
                    info.hits - base_hits,
                    info.misses - base_misses,
                    info.currsize,
                    info.maxsize or 0,
                    getattr(fn, "evictions", 0) - base_evict,
                )
            )
        return reports

    def hit_rate(self, name: str) -> float:
        """Hit rate of one registered cache over this window."""
        for report in self.cache_reports():
            if report.name == name:
                return report.hit_rate
        raise KeyError(f"no registered cache named {name!r}")

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0)

    def render(self, verbose: bool = False) -> str:
        """A human-readable report (counters, cache hit rates, timers).

        Caches are listed in deterministic name order.  By default caches
        with no calls in this window are suppressed; ``verbose=True``
        includes them (useful to confirm a cache was registered but never
        exercised by a workload).
        """
        lines = ["perf stats:"]
        if self.counters:
            lines.append("  counters:")
            for name in sorted(self.counters):
                value = self.counters[name]
                shown = f"{value:.0f}" if float(value).is_integer() else f"{value:.2f}"
                lines.append(f"    {name:<28} {shown:>12}")
        reports = self.cache_reports()
        if not verbose:
            reports = [r for r in reports if r.calls]
        if reports:
            lines.append("  caches (hits/misses, hit rate):")
            for report in reports:
                evicted = f", {report.evictions} evicted" if report.evictions else ""
                lines.append(
                    f"    {report.name:<28} {report.hits:>8}/{report.misses:<8}"
                    f" {report.hit_rate:>6.1%}  (size {report.size}/{report.maxsize}"
                    f"{evicted})"
                )
        if self.timers:
            lines.append("  timers:")
            for name in sorted(self.timers):
                lines.append(f"    {name:<28} {self.timers[name] * 1e3:>10.2f} ms")
        if len(lines) == 1:
            lines.append("  (nothing recorded)")
        return "\n".join(lines)


def _push(stats: "PerfStats") -> None:
    _ACTIVE.set(_ACTIVE.get() + (stats,))


def _pop(stats: "PerfStats") -> None:
    active = _ACTIVE.get()
    if stats in active:
        _ACTIVE.set(tuple(entry for entry in active if entry is not stats))


@contextmanager
def collect() -> Iterator[PerfStats]:
    """Collect counters, timers and cache deltas for the enclosed block."""
    stats = PerfStats()
    stats.snapshot_caches()
    _push(stats)
    try:
        yield stats
    finally:
        _pop(stats)


def start() -> PerfStats:
    """Begin an open-ended collection window (REPL sessions).

    The returned stats object accumulates until :func:`stop` is called;
    its :meth:`PerfStats.render` may be consulted live at any point.
    The window is bound to the calling context: code running on other
    threads or tasks does not report into it.
    """
    stats = PerfStats()
    stats.snapshot_caches()
    _push(stats)
    return stats


def stop(stats: PerfStats) -> PerfStats:
    """End a window opened with :func:`start` (idempotent)."""
    _pop(stats)
    return stats
