"""Performance observability for the inference pipeline and BSP engine.

See :mod:`repro.perf.counters` for the design.  Typical use::

    from repro import perf

    with perf.collect() as stats:
        infer(expr)
    print(stats.render())
"""

from repro.perf.counters import (
    CacheReport,
    PerfStats,
    add_time,
    clear_caches,
    collect,
    increment,
    is_collecting,
    register_cache,
    registered_caches,
    start,
    stop,
    timed,
)

__all__ = [
    "CacheReport",
    "PerfStats",
    "add_time",
    "clear_caches",
    "collect",
    "increment",
    "is_collecting",
    "register_cache",
    "registered_caches",
    "start",
    "stop",
    "timed",
]
