"""Performance observability for the inference pipeline and BSP engine.

See :mod:`repro.perf.counters` for the design.  Typical use::

    from repro import perf

    with perf.collect() as stats:
        infer(expr)
    print(stats.render())
"""

from repro.perf.counters import (
    CacheReport,
    PerfStats,
    add_time,
    clear_caches,
    collect,
    increment,
    is_collecting,
    register_cache,
    registered_caches,
    start,
    stop,
    timed,
)
from repro.perf.memo import (
    BoundedMemo,
    bounded_memo,
    resize_registered,
)

__all__ = [
    "BoundedMemo",
    "CacheReport",
    "PerfStats",
    "add_time",
    "bounded_memo",
    "clear_caches",
    "collect",
    "increment",
    "is_collecting",
    "register_cache",
    "registered_caches",
    "resize_registered",
    "start",
    "stop",
    "timed",
]
