"""Local delta-rules (Figure 1) as rewrites on the AST.

Each function takes a fully-evaluated redex ``App(Prim(op), value)`` and
returns the reduct, or None when no delta-rule applies (the redex is
stuck, or it is the irreducible value ``nc ()``).

Covered rules::

    +(n1, n2)                      ->  n            (and -, *, /, mod,
                                                     comparisons, && ,||)
    fst (v1, v2)                   ->  v1
    snd (v1, v2)                   ->  v2
    fix (fun x -> e)               ->  e[x <- fix (fun x -> e)]
    isnc v                         ->  false        (v /= nc ())
    isnc (nc ())                   ->  true
    not b                          ->  negation
    nproc                          ->  p            (the machine size)
"""

from __future__ import annotations

from typing import Optional

from repro.lang.ast import (
    App,
    Const,
    Expr,
    Fun,
    Pair,
    Prim,
    is_nc_value,
    is_value_syntax,
)
from repro.lang.substitution import substitute
from repro.semantics.primops import BINARY_SCALAR, BOOLEAN, COMPARISON

#: Names with a local delta-rule (plus ``nproc``, handled separately).
LOCAL_DELTA_PRIMS = frozenset(BINARY_SCALAR) | frozenset(
    ("fst", "snd", "fix", "isnc", "not")
)


def _int_pair(arg: Expr) -> Optional[tuple]:
    if (
        isinstance(arg, Pair)
        and isinstance(arg.first, Const)
        and isinstance(arg.second, Const)
        and isinstance(arg.first.value, int)
        and not isinstance(arg.first.value, bool)
        and isinstance(arg.second.value, int)
        and not isinstance(arg.second.value, bool)
    ):
        return arg.first.value, arg.second.value
    return None


def _bool_pair(arg: Expr) -> Optional[tuple]:
    if (
        isinstance(arg, Pair)
        and isinstance(arg.first, Const)
        and isinstance(arg.second, Const)
        and isinstance(arg.first.value, bool)
        and isinstance(arg.second.value, bool)
    ):
        return arg.first.value, arg.second.value
    return None


def delta_local(op: str, arg: Expr) -> Optional[Expr]:
    """Apply the local delta-rule for ``op`` to the value ``arg``."""
    if op in BOOLEAN:
        booleans = _bool_pair(arg)
        return Const(BOOLEAN[op](*booleans)) if booleans is not None else None
    if op in COMPARISON:
        integers = _int_pair(arg)
        return Const(COMPARISON[op](*integers)) if integers is not None else None
    if op in BINARY_SCALAR:  # arithmetic
        integers = _int_pair(arg)
        return Const(BINARY_SCALAR[op](*integers)) if integers is not None else None
    if op == "not":
        if isinstance(arg, Const) and isinstance(arg.value, bool):
            return Const(not arg.value)
        return None
    if op == "fst":
        if isinstance(arg, Pair) and is_value_syntax(arg):
            return arg.first
        return None
    if op == "snd":
        if isinstance(arg, Pair) and is_value_syntax(arg):
            return arg.second
        return None
    if op == "fix":
        if isinstance(arg, Fun):
            return substitute(arg.body, arg.param, App(Prim("fix"), arg))
        return None
    if op == "isnc":
        if not is_value_syntax(arg):
            return None
        return Const(is_nc_value(arg))
    return None
