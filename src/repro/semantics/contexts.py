"""Evaluation contexts (Figure 5): decomposition and plugging.

A non-value expression decomposes uniquely as ``Gamma(redex)`` where
``Gamma`` is an evaluation context and the redex sits at the context's
hole.  The hole is *local* (the paper's ``Gamma_l``) when it lies inside a
parallel-vector component, *global* otherwise; the two kinds exclude each
other by construction, and only local head rules may fire in a local hole.

Contexts are represented by their hole path: the sequence of child
indices (in :meth:`Expr.children` order) from the root to the redex.
Uniqueness of decomposition is property-tested in
``tests/semantics/test_contexts.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.lang.ast import (
    Annot,
    App,
    Case,
    Expr,
    Inl,
    Inr,
    If,
    IfAt,
    Let,
    Pair,
    ParVec,
    Tuple as TupleE,
    is_value_syntax,
)


@dataclass(frozen=True)
class Decomposition:
    """The unique split of a non-value expression into context and redex."""

    path: Tuple[int, ...]
    redex: Expr
    local: bool  # True when the hole is inside a parallel vector (Gamma_l)


def evaluation_positions(expr: Expr) -> Tuple[int, ...]:
    """Child indices that must be values before ``expr`` can head-reduce,
    in evaluation (left-to-right, call-by-value) order — Figure 5."""
    if isinstance(expr, App):
        return (0, 1)
    if isinstance(expr, Let):
        return (0,)
    if isinstance(expr, Pair):
        return (0, 1)
    if isinstance(expr, TupleE):
        return tuple(range(len(expr.items)))
    if isinstance(expr, If):
        return (0,)
    if isinstance(expr, (Inl, Inr)):
        return (0,)
    if isinstance(expr, Case):
        return (0,)
    if isinstance(expr, IfAt):
        return (0, 1)
    if isinstance(expr, ParVec):
        return tuple(range(len(expr.items)))
    return ()


def decompose(expr: Expr) -> Optional[Decomposition]:
    """Find the unique redex position, or None when ``expr`` is a value or
    irreparably stuck above the first non-value position."""
    return _decompose(expr, (), False)


def _decompose(
    expr: Expr, path: Tuple[int, ...], local: bool
) -> Optional[Decomposition]:
    if is_value_syntax(expr):
        return None
    children = expr.children()
    for index in evaluation_positions(expr):
        child = children[index]
        if not is_value_syntax(child):
            return _decompose(
                child, path + (index,), local or isinstance(expr, ParVec)
            )
    return Decomposition(path, expr, local)


def plug(expr: Expr, path: Tuple[int, ...], replacement: Expr) -> Expr:
    """Rebuild ``expr`` with ``replacement`` at the hole ``path``."""
    if not path:
        return replacement
    index, rest = path[0], path[1:]
    children = expr.children()
    new_child = plug(children[index], rest, replacement)
    return replace_child(expr, index, new_child)


def replace_child(expr: Expr, index: int, new_child: Expr) -> Expr:
    """A copy of ``expr`` with child number ``index`` replaced."""
    if isinstance(expr, App):
        return App(new_child, expr.arg) if index == 0 else App(expr.fn, new_child)
    if isinstance(expr, Let):
        if index == 0:
            return Let(expr.name, new_child, expr.body)
        return Let(expr.name, expr.bound, new_child)
    if isinstance(expr, Pair):
        if index == 0:
            return Pair(new_child, expr.second)
        return Pair(expr.first, new_child)
    if isinstance(expr, TupleE):
        items = list(expr.items)
        items[index] = new_child
        return TupleE(tuple(items))
    if isinstance(expr, If):
        parts = [expr.cond, expr.then_branch, expr.else_branch]
        parts[index] = new_child
        return If(*parts)
    if isinstance(expr, IfAt):
        parts = [expr.vec, expr.proc, expr.then_branch, expr.else_branch]
        parts[index] = new_child
        return IfAt(*parts)
    if isinstance(expr, ParVec):
        items = list(expr.items)
        items[index] = new_child
        return ParVec(tuple(items))
    if isinstance(expr, Annot):
        return Annot(new_child, expr.annotation)
    if isinstance(expr, Inl):
        return Inl(new_child)
    if isinstance(expr, Inr):
        return Inr(new_child)
    if isinstance(expr, Case):
        if index == 0:
            return Case(
                new_child,
                expr.left_name,
                expr.left_body,
                expr.right_name,
                expr.right_body,
            )
        if index == 1:
            return Case(
                expr.scrutinee,
                expr.left_name,
                new_child,
                expr.right_name,
                expr.right_body,
            )
        return Case(
            expr.scrutinee,
            expr.left_name,
            expr.left_body,
            expr.right_name,
            new_child,
        )
    raise TypeError(
        f"replace_child: {type(expr).__name__} has no child {index}"
    )
