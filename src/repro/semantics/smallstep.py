"""The small-step dynamic semantics of mini-BSML (section 3).

``step`` performs one reduction ``e -> e'``: it decomposes the expression
into an evaluation context and a redex (Figure 5), fires the appropriate
head rule — beta / let (the epsilon rules), a local delta-rule (Figure 1)
or a parallel delta-rule (Figure 2, only in a *global* hole) — and plugs
the reduct back.

``evaluate`` is the transitive closure ``e ->* v``.  It raises
:class:`StuckError` when a normal form is not a value — which Theorem 1
guarantees never happens for well-typed programs — with a diagnosis that
singles out the paper's motivating failure: a parallel primitive trying to
fire inside a parallel-vector component (dynamic nesting, the ``example2``
scenario).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.lang.ast import (
    Annot,
    App,
    Case,
    Const,
    Inl,
    Inr,
    Expr,
    Fun,
    If,
    IfAt,
    Let,
    Prim,
    Var,
    is_value_syntax,
)
from repro.lang.limits import deep_recursion
from repro.lang.pretty import pretty
from repro.lang.substitution import substitute
from repro.semantics.contexts import decompose, plug
from repro.semantics.delta import LOCAL_DELTA_PRIMS, delta_local
from repro.semantics.delta_parallel import (
    delta_apply,
    delta_ifat,
    delta_mkpar,
    delta_put,
)
from repro.semantics.errors import StepLimitExceeded, StuckError
from repro.semantics.primops import PARALLEL_PRIMS

#: Default fuel for :func:`evaluate`.
DEFAULT_MAX_STEPS = 1_000_000


def head_reduce(redex: Expr, p: int, local: bool) -> Optional[Expr]:
    """Fire the head rule for ``redex``, or return None if none applies.

    ``local`` marks a hole inside a parallel vector: there the global
    reduction relation is unavailable, so parallel delta-rules and the
    global conditional never fire (the paper's Gamma_l vs Gamma split).
    """
    if isinstance(redex, App):
        fn, arg = redex.fn, redex.arg
        if isinstance(fn, Fun):
            return substitute(fn.body, fn.param, arg)
        if isinstance(fn, Prim):
            if fn.name in LOCAL_DELTA_PRIMS:
                return delta_local(fn.name, arg)
            if fn.name in PARALLEL_PRIMS:
                if local:
                    return None  # dynamic nesting: no rule in Gamma_l
                if fn.name == "mkpar":
                    return delta_mkpar(arg, p)
                if fn.name == "apply":
                    return delta_apply(arg, p)
                return delta_put(arg, p)
        return None
    if isinstance(redex, Let):
        if is_value_syntax(redex.bound):
            return substitute(redex.body, redex.name, redex.bound)
        return None
    if isinstance(redex, If):
        if isinstance(redex.cond, Const) and isinstance(redex.cond.value, bool):
            return redex.then_branch if redex.cond.value else redex.else_branch
        return None
    if isinstance(redex, Case):
        scrutinee = redex.scrutinee
        if isinstance(scrutinee, Inl) and is_value_syntax(scrutinee):
            return substitute(redex.left_body, redex.left_name, scrutinee.value)
        if isinstance(scrutinee, Inr) and is_value_syntax(scrutinee):
            return substitute(redex.right_body, redex.right_name, scrutinee.value)
        return None
    if isinstance(redex, IfAt):
        return None if local else delta_ifat(redex, p)
    if isinstance(redex, Prim) and redex.name == "nproc":
        return Const(p)
    if isinstance(redex, Annot):
        return redex.expr  # annotations erase operationally
    return None


def step(expr: Expr, p: int) -> Optional[Expr]:
    """One step of ``->`` (at machine size ``p``), or None in normal form.

    Wrapped in :func:`deep_recursion`: ``decompose``, ``substitute`` and
    ``plug`` all recurse over the AST, so a deep (but legitimate) ``let``
    tower would otherwise blow CPython's default frame limit — the parser,
    inference and the big-step evaluator already guard themselves the
    same way.
    """
    with deep_recursion():
        decomposition = decompose(expr)
        if decomposition is None:
            return None
        reduct = head_reduce(decomposition.redex, p, decomposition.local)
        if reduct is None:
            return None
        return plug(expr, decomposition.path, reduct)


def trace(expr: Expr, p: int, max_steps: int = DEFAULT_MAX_STEPS) -> Iterator[Expr]:
    """Yield the whole reduction sequence ``e -> e1 -> ... `` including
    ``expr`` itself, stopping at the first normal form."""
    yield expr
    for _ in range(max_steps):
        reduced = step(expr, p)
        if reduced is None:
            return
        expr = reduced
        yield expr
    raise StepLimitExceeded(max_steps)


def evaluate(expr: Expr, p: int, max_steps: int = DEFAULT_MAX_STEPS) -> Expr:
    """Reduce ``expr`` to a value, raising :class:`StuckError` on a
    non-value normal form and :class:`StepLimitExceeded` on fuel burnout."""
    with deep_recursion():
        current = expr
        for _ in range(max_steps):
            reduced = step(current, p)
            if reduced is None:
                if is_value_syntax(current):
                    return current
                raise StuckError(current, diagnose(current, p))
            current = reduced
        raise StepLimitExceeded(max_steps)


def step_count(expr: Expr, p: int, max_steps: int = DEFAULT_MAX_STEPS) -> int:
    """Number of reduction steps to reach the normal form."""
    count = 0
    for _ in trace(expr, p, max_steps):
        count += 1
    return count - 1


def diagnose(expr: Expr, p: int) -> str:
    """Explain why a normal-form non-value is stuck."""
    with deep_recursion():
        decomposition = decompose(expr)
        if decomposition is None:
            # Stuck below: some child is a non-value with no redex.
            culprit = _first_stuck_leaf(expr)
            return _describe(culprit, p, local=False) if culprit else "not a value"
        return _describe(decomposition.redex, p, decomposition.local)


def _first_stuck_leaf(expr: Expr) -> Optional[Expr]:
    from repro.semantics.contexts import evaluation_positions

    children = expr.children()
    for index in evaluation_positions(expr):
        child = children[index]
        if not is_value_syntax(child):
            deeper = _first_stuck_leaf(child)
            return deeper if deeper is not None else child
    return None


def _describe(redex: Expr, p: int, local: bool) -> str:
    if isinstance(redex, Var):
        return f"free variable {redex.name!r}"
    if local and isinstance(redex, IfAt):
        return (
            "dynamic nesting: the global conditional 'if ... at ...' occurs "
            "inside a parallel vector component"
        )
    if local and isinstance(redex, App) and isinstance(redex.fn, Prim):
        if redex.fn.name in PARALLEL_PRIMS:
            return (
                f"dynamic nesting: parallel primitive {redex.fn.name!r} "
                "inside a parallel vector component — this is what the "
                "type system's locality constraints reject statically"
            )
    if isinstance(redex, App) and isinstance(redex.fn, Prim):
        if redex.fn.name in ("ref", "!", ":="):
            return (
                f"imperative primitive {redex.fn.name!r}: the store-based "
                "semantics lives in the big-step evaluator "
                "(repro.semantics.bigstep); the faithful small-step machine "
                "covers the pure fragment, which is the one the paper "
                "proves safe"
            )
    if isinstance(redex, App):
        return f"cannot apply {pretty(redex.fn)} to {pretty(redex.arg)}"
    if isinstance(redex, If):
        return f"conditional on a non-boolean: {pretty(redex.cond)}"
    if isinstance(redex, IfAt):
        return (
            "global conditional with an unevaluable vector or an "
            f"out-of-range process index (p = {p})"
        )
    return f"no reduction rule for {pretty(redex)}"


def is_dynamic_nesting(expr: Expr, p: int) -> bool:
    """True when ``expr``'s normal form is stuck because a parallel
    operation appears inside a vector component."""
    try:
        evaluate(expr, p)
        return False
    except StuckError as error:
        return "dynamic nesting" in error.diagnosis
    except Exception:
        return False
