"""Costed execution: run a mini-BSML program and get its BSP cost.

This glues the big-step evaluator to the BSP machine simulator: the
returned :class:`CostedResult` carries the value, the superstep-by-
superstep :class:`~repro.bsp.cost.BspCost`, and the totals under the given
:class:`~repro.bsp.params.BspParams` — everything the cost-model
experiments (formula (1) and the broadcast ablation) measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.bsp.cost import BspCost
from repro.bsp.executor import get_executor
from repro.bsp.machine import BspMachine
from repro.bsp.params import BspParams
from repro.lang.ast import Expr
from repro.lang.limits import deep_recursion
from repro.lang.parser import parse_program
from repro.lang.prelude import with_prelude
from repro.semantics.compiled import get_engine
from repro.semantics.values import Value, to_python


@dataclass
class CostedResult:
    """A value together with the BSP cost of computing it."""

    value: Value
    cost: BspCost
    params: BspParams

    @property
    def total_time(self) -> float:
        return self.cost.total(self.params)

    @property
    def python_value(self):
        # Value-to-Python conversion recurses over the value structure.
        with deep_recursion():
            return to_python(self.value)

    def render(self) -> str:
        return self.cost.render(self.params)


def run_costed(
    expr: Expr,
    params: BspParams,
    use_prelude: bool = False,
    backend: str = "seq",
    faults=None,
    retry=None,
    engine: str = "tree",
) -> CostedResult:
    """Evaluate ``expr`` at size ``params.p`` with full cost accounting.

    ``backend`` selects the execution backend for the per-process
    computation phases (``seq``, ``thread`` or ``process``; see
    :mod:`repro.bsp.executor`).  The value and the abstract cost are
    identical on every backend — the differential harness in
    :mod:`repro.testing.differential` enforces exactly that.

    ``engine`` selects the evaluation engine: ``tree`` (the
    environment-passing big-step evaluator, the default), ``compiled``
    (the closure-compiling engine of :mod:`repro.semantics.compiled`) or
    ``vectorized`` (compiled closures batched over all p pids per
    superstep, :mod:`repro.semantics.vectorized`).  Values, costs, and
    trace signatures are engine-independent by construction — the
    ``check_engines`` differential mode enforces it.

    ``faults``/``retry`` arm a :class:`~repro.bsp.faults.FaultPlan` and
    :class:`~repro.bsp.faults.RetryPolicy` on the machine: supersteps
    then run transactionally, transient faults are retried, and a
    survivable fault schedule leaves value and cost bit-identical to a
    fault-free run (the chaos conformance property).

    Wrapped in :func:`deep_recursion` like the other evaluator entry
    points: prelude linking and evaluation both recurse over the AST, and
    a deep ``let`` tower is a legitimate program.
    """
    machine = BspMachine(
        params, executor=get_executor(backend), faults=faults, retry=retry
    )
    evaluator_cls = get_engine(engine)
    with deep_recursion():
        program = with_prelude(expr) if use_prelude else expr
        value = evaluator_cls(params.p, machine).eval(program)
    return CostedResult(value, machine.cost(), params)


def run_source(
    source: str,
    params: BspParams,
    use_prelude: bool = True,
    filename: str = "<input>",
    backend: str = "seq",
    faults=None,
    retry=None,
    engine: str = "tree",
) -> CostedResult:
    """Parse a program (definitions + final expression) and run it costed."""
    return run_costed(
        parse_program(source, filename),
        params,
        use_prelude,
        backend,
        faults,
        retry,
        engine,
    )
