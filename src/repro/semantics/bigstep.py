"""Big-step (natural-semantics) evaluator with BSP cost accounting.

Semantically equivalent to the small-step machine (property-tested on a
shared corpus) but environment-based, so it runs large programs and —
given a :class:`~repro.bsp.machine.BspMachine` — accounts the BSP cost of
every parallel operation:

* ``mkpar`` / ``apply`` run their per-component computations "on" each
  process: the work is charged to that process's ``w_i``;
* replicated (outside-vector) computation is charged to every process,
  as in an SPMD execution of BSML;
* ``put`` evaluates each sender's message function at every destination
  (charged to the sender), then performs the exchange: the machine
  records the h-relation and the barrier — one superstep ends;
* ``if ... at n ...`` broadcasts one boolean from process ``n`` (an
  ``h = 1`` relation) and passes a barrier, as the paper prescribes for
  the synchronous conditional.

The unit of work is one charge per application, conditional, ``let`` and
primitive reduction — the same currency as the paper's ``w_i`` "local
processing time" up to a constant factor, which is all the cost-shape
experiments need.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, Optional

from repro.bsp.machine import BspMachine
from repro.lang.limits import deep_recursion
from repro.lang.ast import (
    Annot,
    App,
    Case,
    Const,
    Inl,
    Inr,
    Expr,
    Fun,
    If,
    IfAt,
    Let,
    Pair,
    ParVec,
    Prim,
    Tuple as TupleE,
    Var,
)
from repro.semantics.errors import DynamicNestingError, EvalError
from repro.semantics.primops import (
    BINARY_SCALAR,
    PARALLEL_PRIMS,
    apply_binary,
    assign_ref,
    deref_ref,
)
from repro.semantics.values import (
    NC_VALUE,
    Value,
    VClosure,
    VCompiledClosure,
    VDelivered,
    VInl,
    VInr,
    VNc,
    VPair,
    VParVec,
    VPrim,
    VRef,
    VTuple,
    words,
)

Env = Dict[str, Value]


class Evaluator:
    """One evaluation session at machine size ``p``.

    ``machine`` is optional: without it the evaluator just computes the
    value; with it every parallel operation and unit of work is accounted
    into the machine's running :class:`~repro.bsp.cost.BspCost`.
    """

    def __init__(self, p: int, machine: Optional[BspMachine] = None) -> None:
        if machine is not None and machine.p != p:
            raise ValueError(f"machine width {machine.p} differs from p={p}")
        self.p = p
        self.machine = machine
        self._proc: Optional[int] = None  # None = replicated (global) context
        # Component mode: a shadow evaluator running one process's share
        # of a parallel operation on an execution backend counts its ops
        # locally; the machine folds them in afterwards (deterministic
        # and backend-independent, unlike charging a shared machine from
        # concurrent workers).
        self._counting = False
        self._counted_ops = 0.0

    # -- cost plumbing ------------------------------------------------------

    def _charge(self, ops: float = 1.0) -> None:
        if self._counting:
            self._counted_ops += ops
            return
        if self.machine is None:
            return
        if self._proc is None:
            self.machine.replicated(ops)
        else:
            self.machine.local(self._proc, ops)

    def _on_proc(self, proc: int):
        return _ProcContext(self, proc)

    def _require_global(self, operation: str) -> None:
        if self._proc is not None:
            raise DynamicNestingError(Prim(operation), self._proc)

    # -- evaluation ----------------------------------------------------------

    def eval(self, expr: Expr, env: Optional[Env] = None) -> Value:
        from repro.lang.limits import deep_recursion

        with deep_recursion():
            return self._eval(expr, env or {})

    def _eval(self, expr: Expr, env: Env) -> Value:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Var):
            try:
                return env[expr.name]
            except KeyError:
                raise EvalError(f"unbound variable {expr.name!r}") from None
        if isinstance(expr, Prim):
            if expr.name == "nproc":
                return self.p
            return VPrim(expr.name)
        if isinstance(expr, Fun):
            return VClosure(expr.param, expr.body, env)
        if isinstance(expr, Let):
            self._charge()
            bound = self._eval(expr.bound, env)
            return self._eval(expr.body, {**env, expr.name: bound})
        if isinstance(expr, Pair):
            return VPair(self._eval(expr.first, env), self._eval(expr.second, env))
        if isinstance(expr, TupleE):
            return VTuple(tuple(self._eval(item, env) for item in expr.items))
        if isinstance(expr, If):
            self._charge()
            condition = self._eval(expr.cond, env)
            if not isinstance(condition, bool):
                raise EvalError("conditional on a non-boolean value")
            branch = expr.then_branch if condition else expr.else_branch
            return self._eval(branch, env)
        if isinstance(expr, Inl):
            return VInl(self._eval(expr.value, env))
        if isinstance(expr, Inr):
            return VInr(self._eval(expr.value, env))
        if isinstance(expr, Case):
            self._charge()
            scrutinee = self._eval(expr.scrutinee, env)
            if isinstance(scrutinee, VInl):
                return self._eval(
                    expr.left_body, {**env, expr.left_name: scrutinee.value}
                )
            if isinstance(scrutinee, VInr):
                return self._eval(
                    expr.right_body, {**env, expr.right_name: scrutinee.value}
                )
            raise EvalError("case on a non-sum value")
        if isinstance(expr, Annot):
            return self._eval(expr.expr, env)
        if isinstance(expr, IfAt):
            return self._eval_ifat(expr, env)
        if isinstance(expr, App):
            self._charge()
            fn = self._eval(expr.fn, env)
            arg = self._eval(expr.arg, env)
            return self.apply(fn, arg)
        if isinstance(expr, ParVec):
            if self.machine is not None:
                tasks = [
                    partial(_literal_task, self.p, i, item, env)
                    for i, item in enumerate(expr.items)
                ]
                return VParVec(tuple(self.machine.run_superstep(tasks)))
            components = []
            for i, item in enumerate(expr.items):
                with self._on_proc(i):
                    components.append(self._eval(item, env))
            return VParVec(tuple(components))
        raise EvalError(f"cannot evaluate node {type(expr).__name__}")

    # -- application ----------------------------------------------------------

    def apply(self, fn: Value, arg: Value) -> Value:
        if isinstance(fn, VClosure):
            return self._eval(fn.body, {**fn.env, fn.param: arg})
        if isinstance(fn, VCompiledClosure):
            # Engine interop (REPL sessions can mix engines): run the
            # compiled closure with this evaluator's context so charges
            # land exactly where the tree evaluator would put them.
            from repro.semantics.compiled import call_compiled

            return call_compiled(self, fn, arg)
        if isinstance(fn, VDelivered):
            if isinstance(arg, bool) or not isinstance(arg, int):
                raise EvalError("a delivered-messages function expects an int")
            return fn.lookup(arg)
        if isinstance(fn, VPrim):
            return self._apply_prim(fn.name, arg)
        raise EvalError(f"cannot apply a non-function ({type(fn).__name__})")

    def _apply_prim(self, name: str, arg: Value) -> Value:
        if name in BINARY_SCALAR:
            if not isinstance(arg, VPair):
                raise EvalError(f"operator {name!r} expects a pair")
            return apply_binary(name, arg.first, arg.second)
        if name == "not":
            if not isinstance(arg, bool):
                raise EvalError("'not' expects a boolean")
            return not arg
        if name == "fst":
            if not isinstance(arg, VPair):
                raise EvalError("'fst' expects a pair")
            return arg.first
        if name == "snd":
            if not isinstance(arg, VPair):
                raise EvalError("'snd' expects a pair")
            return arg.second
        if name == "nc":
            return NC_VALUE
        if name == "isnc":
            return isinstance(arg, VNc)
        if name == "fix":
            return self._fix(arg)
        if name == "ref":
            return VRef(cells=[arg] * self.p, origin=self._proc)
        if name == "!":
            return self._deref(arg)
        if name == ":=":
            if not (isinstance(arg, VPair) and isinstance(arg.first, VRef)):
                raise EvalError("':=' expects a (reference, value) pair")
            return self._assign(arg.first, arg.second)
        if name in PARALLEL_PRIMS:
            self._require_global(name)
            if name == "mkpar":
                return self._mkpar(arg)
            if name == "apply":
                return self._parallel_apply(arg)
            return self._put(arg)
        raise EvalError(f"unknown primitive {name!r}")

    def _deref(self, ref: Value) -> Value:
        return deref_ref(ref, self._proc, self.p)

    def _assign(self, ref: VRef, value: Value) -> Value:
        return assign_ref(ref, value, self._proc, self.p)

    def _fix(self, fn: Value) -> Value:
        """Call-by-value fixpoint: ``fix (fun f -> fun x -> e)`` ties the
        recursive closure's knot through its own environment."""
        if isinstance(fn, VCompiledClosure):
            from repro.semantics.compiled import fix_value

            return fix_value(self.p, fn)
        if not isinstance(fn, VClosure):
            raise EvalError("'fix' expects a function")
        if not isinstance(fn.body, Fun):
            raise EvalError(
                "'fix' needs a functional body (fix (fun f -> fun x -> ...)); "
                "any other call-by-value fixpoint diverges"
            )
        env: Env = dict(fn.env)
        recursive = VClosure(fn.body.param, fn.body.body, env)
        env[fn.param] = recursive
        return recursive

    # -- the parallel operations ----------------------------------------------

    def _mkpar(self, fn: Value) -> Value:
        if self.machine is not None:
            tasks = [
                partial(_component_task, self.p, i, fn, i) for i in range(self.p)
            ]
            return VParVec(tuple(self.machine.run_superstep(tasks)))
        components = []
        for i in range(self.p):
            with self._on_proc(i):
                self._charge()
                components.append(self.apply(fn, i))
        return VParVec(tuple(components))

    def _parallel_apply(self, arg: Value) -> Value:
        if not (
            isinstance(arg, VPair)
            and isinstance(arg.first, VParVec)
            and isinstance(arg.second, VParVec)
        ):
            raise EvalError("'apply' expects a pair of parallel vectors")
        fns, values = arg.first, arg.second
        if self.machine is not None:
            tasks = [
                partial(_component_task, self.p, i, fns.items[i], values.items[i])
                for i in range(self.p)
            ]
            return VParVec(tuple(self.machine.run_superstep(tasks)))
        components = []
        for i in range(self.p):
            with self._on_proc(i):
                self._charge()
                components.append(self.apply(fns.items[i], values.items[i]))
        return VParVec(tuple(components))

    def _put(self, arg: Value) -> Value:
        if not isinstance(arg, VParVec):
            raise EvalError("'put' expects a parallel vector of functions")
        p = self.p
        # Computation phase: sender j evaluates its message for every dst.
        if self.machine is not None:
            tasks = [
                partial(_put_row_task, p, j, arg.items[j]) for j in range(p)
            ]
            outgoing = self.machine.run_superstep(tasks)
        else:
            outgoing = []  # outgoing[j][i] = value from j to i
            for j in range(p):
                with self._on_proc(j):
                    row = []
                    for i in range(p):
                        self._charge()
                        row.append(self.apply(arg.items[j], i))
                    outgoing.append(row)
        # Communication + synchronization phase.
        if self.machine is not None:
            sent = [
                [
                    0 if isinstance(outgoing[j][i], VNc) else words(outgoing[j][i])
                    for i in range(p)
                ]
                for j in range(p)
            ]
            self.machine.exchange(sent, label="put")
        # Delivery: process i's function of received messages.
        return VParVec(
            tuple(
                VDelivered(tuple(outgoing[j][i] for j in range(p)))
                for i in range(p)
            )
        )

    def _eval_ifat(self, expr: IfAt, env: Env) -> Value:
        self._require_global("ifat")
        vec = self._eval(expr.vec, env)
        proc = self._eval(expr.proc, env)
        if not isinstance(vec, VParVec):
            raise EvalError("'if ... at' needs a parallel vector of booleans")
        if isinstance(proc, bool) or not isinstance(proc, int):
            raise EvalError("'if ... at' needs an integer process index")
        if not 0 <= proc < self.p:
            raise EvalError(
                f"'if ... at' process index {proc} out of range (p = {self.p})"
            )
        chosen = vec.items[proc]
        if not isinstance(chosen, bool):
            raise EvalError("'if ... at' vector holds a non-boolean")
        if self.machine is not None:
            # Broadcast one boolean from ``proc`` to everyone, then barrier.
            sent = [[0] * self.p for _ in range(self.p)]
            for destination in range(self.p):
                if destination != proc:
                    sent[proc][destination] = 1
            self.machine.exchange(sent, label="if-at")
        branch = expr.then_branch if chosen else expr.else_branch
        return self._eval(branch, env)


# -- per-process tasks for the execution backends ----------------------------
#
# Module-level (hence picklable) functions building one process's share of
# a parallel operation.  Each creates a *shadow* evaluator: machine-less,
# pinned to the process, counting its ops locally.  The shadow enforces
# the same locality discipline as the in-line path (its ``_proc`` is set,
# so any nested parallel construct raises ``DynamicNestingError``), and
# the op totals it returns are exactly what the in-line path would have
# charged, so the folded cost is identical on every backend.


def _shadow(p: int, proc: int) -> Evaluator:
    shadow = Evaluator(p)
    shadow._proc = proc
    shadow._counting = True
    return shadow


def _component_task(p: int, proc: int, fn: Value, arg: Value):
    """One ``mkpar``/``apply`` component: apply ``fn`` to ``arg`` on ``proc``."""
    shadow = _shadow(p, proc)
    with deep_recursion():
        shadow._charge()
        value = shadow.apply(fn, arg)
    return value, shadow._counted_ops


def _put_row_task(p: int, proc: int, sender: Value):
    """One ``put`` sender: evaluate its message for every destination."""
    shadow = _shadow(p, proc)
    with deep_recursion():
        row = []
        for destination in range(p):
            shadow._charge()
            row.append(shadow.apply(sender, destination))
    return row, shadow._counted_ops


def _literal_task(p: int, proc: int, item: Expr, env: Env):
    """One component of a literal parallel-vector expression."""
    shadow = _shadow(p, proc)
    with deep_recursion():
        value = shadow._eval(item, env)
    return value, shadow._counted_ops


class _ProcContext:
    """Scoped switch of the evaluator's current process."""

    def __init__(self, evaluator: Evaluator, proc: int) -> None:
        self.evaluator = evaluator
        self.proc = proc
        self.saved: Optional[int] = None

    def __enter__(self) -> None:
        self.saved = self.evaluator._proc
        if self.saved is not None:
            raise DynamicNestingError(Prim("mkpar"), self.saved)
        self.evaluator._proc = self.proc

    def __exit__(self, *exc_info) -> None:
        self.evaluator._proc = self.saved


def run(
    expr: Expr,
    p: int,
    machine: Optional[BspMachine] = None,
    env: Optional[Env] = None,
) -> Value:
    """Evaluate ``expr`` on a ``p``-process machine (one-shot helper)."""
    return Evaluator(p, machine).eval(expr, env)
