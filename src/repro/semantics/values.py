"""Runtime values of the big-step evaluator, and their size in words.

The small-step machine rewrites ASTs, which is faithful but slow; the
big-step evaluator (:mod:`repro.semantics.bigstep`) uses proper runtime
values with environment-carrying closures.  ``words`` measures a value's
communication size — the ``s`` of the paper's cost formula (1) — in
machine words: scalars weigh 1, pairs weigh the sum of their parts, and a
transmitted closure weighs one word per AST node of its body plus its
captured environment (a simple, documented serialization model).

``reify`` converts a runtime value back into a (closed) value expression
of the small-step syntax, which is how the test suite checks the two
evaluators agree and how Theorem 1's "the result retypes" is exercised on
big-step results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.lang.ast import (
    NC,
    UNIT,
    Inl as InlE,
    Inr as InrE,
    Const,
    Expr,
    Fun,
    If,
    App,
    Pair as PairE,
    ParVec,
    Prim,
    Tuple as TupleE,
    UnitType,
    Var,
)
from repro.lang.substitution import free_vars, substitute
from repro.semantics.errors import EvalError

#: Scalar runtime values are plain Python payloads.
Scalar = Union[int, bool, UnitType]


@dataclass(frozen=True)
class VPair:
    first: "Value"
    second: "Value"


@dataclass(frozen=True)
class VTuple:
    items: Tuple["Value", ...]


@dataclass(frozen=True)
class VInl:
    """A left injection (sum-type extension)."""

    value: "Value"


@dataclass(frozen=True)
class VInr:
    """A right injection (sum-type extension)."""

    value: "Value"


@dataclass(eq=False)
class VRef:
    """A mutable reference (imperative extension, paper section 6).

    Models SPMD replicated state: a reference created in replicated
    (global) context has one cell per process, all initially equal;
    assignments inside a parallel-vector component touch only that
    process's cell.  ``origin`` records the creating context (None for
    replicated, the pid for a component-local reference).  Identity
    equality, like OCaml refs.
    """

    cells: list
    origin: Optional[int]

    @property
    def coherent(self) -> bool:
        """True when every process replica still holds the same value."""
        first = self.cells[0]
        return all(cell == first for cell in self.cells[1:])

    def __reduce__(self):
        # References are identity-bearing mutable cells: pickling one
        # (e.g. to ship a task to a process-pool worker) would silently
        # turn aliasing into copying and lose assignments made in the
        # child.  Refusing makes the process backend fall back to inline
        # execution for any task whose environment contains a reference.
        raise TypeError(
            "a mutable reference cannot be pickled (aliasing would become "
            "copying); reference-touching tasks must run in-process"
        )


@dataclass(frozen=True)
class VNc:
    """The ``nc ()`` value — "no communication" (the paper's None)."""


@dataclass(frozen=True)
class VPrim:
    """An unapplied primitive, e.g. ``fst`` used as a first-class function."""

    name: str


@dataclass
class VClosure:
    """A function value: parameter, body, captured environment.

    Mutable (not frozen) because ``fix`` ties the knot by inserting the
    closure into its own captured environment.
    """

    param: str
    body: Expr
    env: Dict[str, "Value"]

    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:
        return id(self)


class VCompiledClosure:
    """A function value produced by the closure-compiling evaluator
    (:mod:`repro.semantics.compiled`).

    The source ``param``/``body`` are kept so the value weighs
    (:func:`words`) and reifies (:func:`reify`) exactly like the tree
    evaluator's :class:`VClosure` for the same program point.  ``code``
    is the compiled body: a callable ``code(rt, frame)`` running against
    a slot-indexed frame laid out ``[argument, *captured cells, *let
    slots]`` (``frame_size`` slots in total).  ``capture_names`` lists
    the captured free variables in slot order — exactly
    ``free_vars(body) - {param}`` restricted to the lexical scope — and
    ``cells`` holds their values, copied at closure creation.  ``cells``
    is a mutable list because ``fix`` ties the recursive knot by
    patching the self-capture after the fact.  Identity equality, like
    :class:`VClosure`.
    """

    __slots__ = ("param", "body", "code", "frame_size", "capture_names", "cells")

    def __init__(
        self,
        param: str,
        body: Expr,
        code,
        frame_size: int,
        capture_names: Tuple[str, ...],
        cells: list,
    ) -> None:
        self.param = param
        self.body = body
        self.code = code
        self.frame_size = frame_size
        self.capture_names = capture_names
        self.cells = cells

    def __repr__(self) -> str:
        return (
            f"VCompiledClosure(param={self.param!r}, "
            f"captures={self.capture_names!r})"
        )


@dataclass(frozen=True)
class VDelivered:
    """The delivered-messages function a ``put`` leaves on each process:
    maps a sender pid to the received value, ``nc ()`` when none came
    (and for indices outside ``0..p-1``, as in Figure 2's ``f_i``)."""

    messages: Tuple["Value", ...]

    def lookup(self, index: int) -> "Value":
        if 0 <= index < len(self.messages):
            return self.messages[index]
        return NC_VALUE


@dataclass(frozen=True)
class VParVec:
    """A p-wide parallel vector of per-process values."""

    items: Tuple["Value", ...]

    @property
    def width(self) -> int:
        return len(self.items)


Value = Union[
    Scalar, VPair, VTuple, VInl, VInr, VNc, VPrim, VClosure,
    VCompiledClosure, VDelivered, VParVec, VRef,
]

#: Singletons.
NC_VALUE = VNc()


def is_global_value(value: Value) -> bool:
    """True when a parallel vector occurs anywhere inside ``value``."""
    if isinstance(value, VParVec):
        return True
    if isinstance(value, VPair):
        return is_global_value(value.first) or is_global_value(value.second)
    if isinstance(value, VTuple):
        return any(is_global_value(item) for item in value.items)
    if isinstance(value, (VInl, VInr)):
        return is_global_value(value.value)
    return False


def words(value: Value) -> int:
    """Communication size of ``value`` in machine words (the ``s`` of
    formula (1)).  Parallel vectors are not transmissible."""
    if isinstance(value, bool) or isinstance(value, int):
        return 1
    if isinstance(value, UnitType):
        return 1
    if isinstance(value, (VNc, VPrim)):
        return 1
    if isinstance(value, VPair):
        return words(value.first) + words(value.second)
    if isinstance(value, VTuple):
        return sum(words(item) for item in value.items)
    if isinstance(value, (VInl, VInr)):
        return 1 + words(value.value)  # one tag word plus the payload
    if isinstance(value, VClosure):
        captured = sum(
            words(value.env[name])
            for name in free_vars(value.body) - {value.param}
            if name in value.env
        )
        return 1 + value.body.size() + captured
    if isinstance(value, VCompiledClosure):
        # The capture list is exactly the free variables a VClosure for
        # the same program point would weigh, so the two engines charge
        # identical communication sizes.
        return 1 + value.body.size() + sum(words(cell) for cell in value.cells)
    if isinstance(value, VDelivered):
        return sum(words(message) for message in value.messages)
    if isinstance(value, VParVec):
        raise EvalError("a parallel vector has no communication size")
    if isinstance(value, VRef):
        raise EvalError(
            "references are not transmissible (sending one would silently "
            "turn aliasing into copying; see DESIGN.md on the imperative "
            "extension)"
        )
    raise TypeError(f"words: unknown value {type(value).__name__}")


def reify(value: Value, _stack: Optional[set] = None) -> Expr:
    """Convert a runtime value back to a closed value expression.

    Closures reify by substituting their captured environment into their
    body; recursive closures (created by ``fix``) would reify into an
    infinite term and raise instead.
    """
    if _stack is None:
        _stack = set()
    if isinstance(value, bool):
        return Const(value)
    if isinstance(value, int):
        return Const(value)
    if isinstance(value, UnitType):
        return Const(UNIT)
    if isinstance(value, VNc):
        return NC
    if isinstance(value, VPrim):
        return Prim(value.name)
    if isinstance(value, VPair):
        return PairE(reify(value.first, _stack), reify(value.second, _stack))
    if isinstance(value, VTuple):
        return TupleE(tuple(reify(item, _stack) for item in value.items))
    if isinstance(value, VInl):
        return InlE(reify(value.value, _stack))
    if isinstance(value, VInr):
        return InrE(reify(value.value, _stack))
    if isinstance(value, VParVec):
        return ParVec(tuple(reify(item, _stack) for item in value.items))
    if isinstance(value, VDelivered):
        # Rebuild Figure 2's f_i = fun x -> if x = 0 then v_0 else ... nc ()
        body: Expr = NC
        for j in reversed(range(len(value.messages))):
            condition = App(Prim("="), PairE(Var("x"), Const(j)))
            body = If(condition, reify(value.messages[j], _stack), body)
        return Fun("x", body)
    if isinstance(value, VRef):
        raise EvalError("cannot reify a mutable reference into a source term")
    if isinstance(value, VClosure):
        if id(value) in _stack:
            raise EvalError("cannot reify a recursive closure into a finite term")
        _stack = _stack | {id(value)}
        body = value.body
        for name in sorted(free_vars(value.body) - {value.param}):
            if name in value.env:
                body = substitute(body, name, reify(value.env[name], _stack))
        return Fun(value.param, body)
    if isinstance(value, VCompiledClosure):
        if id(value) in _stack:
            raise EvalError("cannot reify a recursive closure into a finite term")
        _stack = _stack | {id(value)}
        body = value.body
        # capture_names is sorted at compile time, matching the VClosure
        # branch's iteration order, so both engines reify to one term.
        for name, cell in zip(value.capture_names, value.cells):
            body = substitute(body, name, reify(cell, _stack))
        return Fun(value.param, body)
    raise TypeError(f"reify: unknown value {type(value).__name__}")


def to_python(value: Value):
    """Project a ground value to plain Python data (for tests/examples).

    Scalars map to themselves, pairs/tuples to Python tuples, ``nc ()`` to
    None, parallel vectors to a list; functions stay as-is.
    """
    if isinstance(value, (bool, int)):
        return value
    if isinstance(value, UnitType):
        return ()
    if isinstance(value, VNc):
        return None
    if isinstance(value, VPair):
        return (to_python(value.first), to_python(value.second))
    if isinstance(value, VInl):
        return ("inl", to_python(value.value))
    if isinstance(value, VInr):
        return ("inr", to_python(value.value))
    if isinstance(value, VTuple):
        return tuple(to_python(item) for item in value.items)
    if isinstance(value, VParVec):
        return [to_python(item) for item in value.items]
    return value
