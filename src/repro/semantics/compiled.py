"""Closure-compiling evaluator with slot-indexed environments.

The big-step evaluator (:mod:`repro.semantics.bigstep`) walks the AST on
every evaluation: each node pays an ``isinstance`` dispatch chain and
every variable a dict lookup in a freshly copied environment.  This
module lowers a mini-BSML expression **once** into nested Python
closures — one ``step(rt, frame)`` callable per AST node — and then
runs the closures:

* **slot-indexed environments** — every binder (function parameter,
  ``let``, ``case`` branch) is resolved at compile time to an integer
  slot of a flat per-activation frame, laid out ``[argument, *captured
  cells, *let slots]``; variable access is a list index, closure
  creation copies exactly the captured free variables (de Bruijn-style,
  but keeping names for diagnostics and interop);
* **no per-node dispatch** — the ``isinstance`` chain runs once, at
  compile time; at run time each node is a direct call;
* **constant folding** — a closed subexpression that provably terminates
  (no functions, no parallel/imperative primitives) and evaluates to a
  scalar is evaluated at compile time; the folded step returns the value
  and charges the *statically counted* ops, so the :class:`BspCost` is
  bit-identical to the tree engine's (integer-valued float sums are
  exact, and :meth:`BspMachine.local`/``replicated`` accumulate
  commutatively within a superstep);
* **fast paths for saturated binary primitives** — ``e1 + e2`` (really
  ``App(Prim("+"), Pair(e1, e2))``) skips the ``VPrim``/``VPair``
  allocations and dispatches straight to the operator with the same
  dynamic kind checks.

**Cost conformance is the design invariant.**  The compiled engine makes
*exactly* the same :class:`~repro.bsp.machine.BspMachine` calls as the
tree engine, in the same program order: one charge per application /
conditional / ``let`` / primitive reduction, per-component tasks through
:meth:`~repro.bsp.machine.BspMachine.run_superstep` (abstract op counts
computed inside the tasks, so every backend agrees), the same exchange
matrices under the same labels for ``put`` and ``if ... at``.  Fault
plans draw machine-side in program order, so an armed
:class:`~repro.bsp.faults.FaultPlan` replays the identical schedule
under either engine, and the structured trace's
:meth:`~repro.obs.tracer.Trace.abstract_signature` is bit-identical too.
The differential harness (:mod:`repro.testing.differential`,
``check_engines`` mode) enforces all three equalities across engines ×
backends.

Error behaviour is preserved *including timing*: an unbound variable, an
unknown node, or a subexpression that would raise is compiled to a step
that raises when (and only when) the tree engine would have reached it —
constant folding is abandoned whenever compile-time evaluation raises.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bsp.machine import BspMachine
from repro.lang.ast import (
    Annot,
    App,
    Case,
    Const,
    Expr,
    Fun,
    If,
    IfAt,
    Inl,
    Inr,
    Let,
    Pair,
    ParVec,
    Prim,
    Tuple as TupleE,
    UnitType,
    Var,
)
from repro.lang.limits import deep_recursion
from repro.lang.substitution import free_vars
from repro.semantics.bigstep import Evaluator
from repro.semantics.errors import DynamicNestingError, EvalError
from repro.semantics.primops import (
    ARITHMETIC,
    BINARY_SCALAR,
    BOOLEAN,
    COMPARISON,
    PARALLEL_PRIMS,
    apply_binary,
    assign_ref,
    deref_ref,
)
from repro.semantics.values import (
    NC_VALUE,
    Value,
    VClosure,
    VCompiledClosure,
    VDelivered,
    VInl,
    VInr,
    VNc,
    VPair,
    VParVec,
    VPrim,
    VRef,
    VTuple,
    words,
)

#: The selectable evaluation engines, in documentation order.  ``tree``
#: is the environment-passing big-step evaluator (the default and the
#: reference); ``compiled`` is this module's engine; ``vectorized``
#: (:mod:`repro.semantics.vectorized`) runs compiled closures once over
#: a length-p vector of frames.
ENGINES = ("tree", "compiled", "vectorized")


def get_engine(name: str):
    """The evaluator class for ``name`` (one of :data:`ENGINES`).

    All engine classes share the ``(p, machine)`` constructor and the
    ``eval(expr, env)`` / ``apply(fn, arg)`` surface, so callers switch
    engines without touching anything else.
    """
    if name == "tree":
        return Evaluator
    if name == "compiled":
        return CompiledEvaluator
    if name == "vectorized":
        # Imported lazily: vectorized builds on this module.
        from repro.semantics.vectorized import VectorizedEvaluator

        return VectorizedEvaluator
    raise ValueError(
        f"unknown engine {name!r} (choose from {', '.join(ENGINES)})"
    )


# -- runtime context ----------------------------------------------------------


class _Runtime:
    """The threaded evaluation context of one compiled-program run.

    Mirrors the mutable state of :class:`~repro.semantics.bigstep
    .Evaluator`: the machine (None = uncosted), the current process
    (None = replicated/global context), and the component-counting mode
    used by per-process tasks on the execution backends.
    """

    __slots__ = ("p", "machine", "proc", "counting", "counted")

    def __init__(
        self,
        p: int,
        machine: Optional[BspMachine] = None,
        proc: Optional[int] = None,
        counting: bool = False,
    ) -> None:
        self.p = p
        self.machine = machine
        self.proc = proc
        self.counting = counting
        self.counted = 0.0

    def charge(self, ops: float = 1.0) -> None:
        if self.counting:
            self.counted += ops
            return
        machine = self.machine
        if machine is None:
            return
        if self.proc is None:
            machine.replicated(ops)
        else:
            machine.local(self.proc, ops)

    def require_global(self, operation: str) -> None:
        if self.proc is not None:
            raise DynamicNestingError(Prim(operation), self.proc)

    # The parallel primitives dispatch through these overridable hooks
    # so an engine can substitute its own superstep strategy (the
    # vectorized engine batches the per-component applications) without
    # re-deriving the primitive dispatch above them.

    def mkpar(self, fn: Value) -> Value:
        return _mkpar(self, fn)

    def parallel_apply(self, arg: Value) -> Value:
        return _parallel_apply(self, arg)

    def put(self, arg: Value) -> Value:
        return _put(self, arg)


# -- compile-time scope -------------------------------------------------------

_MISSING = object()


class _Scope:
    """Name-to-slot map of one frame (a function body or the program).

    ``bind`` appends a fresh slot (binders never share slots, so a
    parallel-vector literal's components can run concurrently against
    the one shared frame) and returns the shadowed entry for ``unbind``
    to restore — lexical shadowing resolved entirely at compile time.
    """

    __slots__ = ("slots", "size")

    def __init__(self, names: Sequence[str]) -> None:
        self.slots: Dict[str, int] = {
            name: index for index, name in enumerate(names)
        }
        self.size = len(names)

    def bind(self, name: str) -> Tuple[int, object]:
        slot = self.size
        self.size += 1
        previous = self.slots.get(name, _MISSING)
        self.slots[name] = slot
        return slot, previous

    def unbind(self, name: str, previous: object) -> None:
        if previous is _MISSING:
            del self.slots[name]
        else:
            self.slots[name] = previous


# -- constant folding ---------------------------------------------------------

#: Primitives whose presence makes a subtree unfoldable: effects
#: (references), communication (the parallel primitives), and ``fix``
#: (the only source of divergence once ``Fun`` nodes are excluded).
_FOLD_BANNED_PRIMS = frozenset(("fix", "ref", "!", ":=", "mkpar", "apply", "put"))


def _foldable_shape(expr: Expr) -> bool:
    """True when ``expr`` contains no functions, no parallel constructs
    and no banned primitives — a syntactic termination/purity guarantee
    (applications can only saturate scalar primitives)."""
    for node in expr.walk():
        if isinstance(node, (Fun, ParVec, IfAt)):
            return False
        if isinstance(node, Prim) and node.name in _FOLD_BANNED_PRIMS:
            return False
    return True


def fold_constant(expr: Expr, p: int) -> Optional[Tuple[Value, float]]:
    """Evaluate a foldable subtree at compile time: ``(value, ops)``,
    or None when ``expr`` must run.

    Only closed (no free variables), syntactically terminating subtrees
    whose value is a scalar fold.  The ops a tree evaluation would have
    charged are counted by a counting shadow evaluator.  If compile-time
    evaluation raises *anything*, folding is abandoned so the error
    still happens at run time, exactly when the tree engine reaches it
    (or never, in an untaken branch).  Shared with the vectorized
    engine, which broadcasts the folded value across all lanes.
    """
    if isinstance(expr, (Const, Var, Prim, Fun)):
        return None  # leaves compile to direct steps already
    if free_vars(expr):
        return None
    if not _foldable_shape(expr):
        return None
    shadow = Evaluator(p)
    shadow._counting = True
    try:
        value = shadow._eval(expr, {})
    except Exception:
        return None
    if not isinstance(value, (bool, int, UnitType)):
        return None
    return value, shadow._counted_ops


def _try_fold(expr: Expr, p: int):
    """Compile ``expr`` to a precomputed step, or None when it must run.

    The folded step charges the statically counted ops as a lump, so
    the sum lands on the same processes in the same superstep and
    :class:`BspCost` stays bit-identical to the tree engine (sums of
    1.0 are exact floats).
    """
    folded = fold_constant(expr, p)
    if folded is None:
        return None
    value, ops = folded
    if ops:

        def step(rt, frame):
            rt.charge(ops)
            return value

        return step

    def step(rt, frame):
        return value

    return step


# -- the compiler -------------------------------------------------------------


def _compile(expr: Expr, scope: _Scope, p: int) -> Callable:
    folded = _try_fold(expr, p)
    if folded is not None:
        return folded

    if isinstance(expr, Var):
        slot = scope.slots.get(expr.name)
        if slot is None:
            name = expr.name

            def step(rt, frame):
                raise EvalError(f"unbound variable {name!r}")

            return step

        def step(rt, frame):
            return frame[slot]

        return step

    if isinstance(expr, Const):
        value = expr.value

        def step(rt, frame):
            return value

        return step

    if isinstance(expr, Prim):
        if expr.name == "nproc":

            def step(rt, frame):
                return rt.p

            return step
        prim = VPrim(expr.name)

        def step(rt, frame):
            return prim

        return step

    if isinstance(expr, Fun):
        return _compile_fun(expr, scope, p)

    if isinstance(expr, App):
        return _compile_app(expr, scope, p)

    if isinstance(expr, Let):
        bound_step = _compile(expr.bound, scope, p)
        slot, saved = scope.bind(expr.name)
        body_step = _compile(expr.body, scope, p)
        scope.unbind(expr.name, saved)

        def step(rt, frame):
            rt.charge()
            frame[slot] = bound_step(rt, frame)
            return body_step(rt, frame)

        return step

    if isinstance(expr, Pair):
        first_step = _compile(expr.first, scope, p)
        second_step = _compile(expr.second, scope, p)

        def step(rt, frame):
            return VPair(first_step(rt, frame), second_step(rt, frame))

        return step

    if isinstance(expr, TupleE):
        item_steps = [_compile(item, scope, p) for item in expr.items]

        def step(rt, frame):
            return VTuple(tuple(item(rt, frame) for item in item_steps))

        return step

    if isinstance(expr, If):
        cond_step = _compile(expr.cond, scope, p)
        then_step = _compile(expr.then_branch, scope, p)
        else_step = _compile(expr.else_branch, scope, p)

        def step(rt, frame):
            rt.charge()
            condition = cond_step(rt, frame)
            if condition is True:
                return then_step(rt, frame)
            if condition is False:
                return else_step(rt, frame)
            raise EvalError("conditional on a non-boolean value")

        return step

    if isinstance(expr, Inl):
        inner_step = _compile(expr.value, scope, p)

        def step(rt, frame):
            return VInl(inner_step(rt, frame))

        return step

    if isinstance(expr, Inr):
        inner_step = _compile(expr.value, scope, p)

        def step(rt, frame):
            return VInr(inner_step(rt, frame))

        return step

    if isinstance(expr, Case):
        scrutinee_step = _compile(expr.scrutinee, scope, p)
        left_slot, saved = scope.bind(expr.left_name)
        left_step = _compile(expr.left_body, scope, p)
        scope.unbind(expr.left_name, saved)
        right_slot, saved = scope.bind(expr.right_name)
        right_step = _compile(expr.right_body, scope, p)
        scope.unbind(expr.right_name, saved)

        def step(rt, frame):
            rt.charge()
            scrutinee = scrutinee_step(rt, frame)
            if isinstance(scrutinee, VInl):
                frame[left_slot] = scrutinee.value
                return left_step(rt, frame)
            if isinstance(scrutinee, VInr):
                frame[right_slot] = scrutinee.value
                return right_step(rt, frame)
            raise EvalError("case on a non-sum value")

        return step

    if isinstance(expr, Annot):
        return _compile(expr.expr, scope, p)

    if isinstance(expr, IfAt):
        return _compile_ifat(expr, scope, p)

    if isinstance(expr, ParVec):
        return _compile_parvec(expr, scope, p)

    kind = type(expr).__name__

    def step(rt, frame):
        raise EvalError(f"cannot evaluate node {kind}")

    return step


def _compile_fun(expr: Fun, scope: _Scope, p: int) -> Callable:
    param, body = expr.param, expr.body
    capture_names = tuple(
        sorted(
            name
            for name in free_vars(body) - {param}
            if name in scope.slots
        )
    )
    capture_slots = [scope.slots[name] for name in capture_names]
    inner = _Scope((param,) + capture_names)
    body_step = _compile(body, inner, p)
    frame_size = inner.size

    if not capture_slots:

        def step(rt, frame):
            return VCompiledClosure(param, body, body_step, frame_size, (), [])

        return step

    def step(rt, frame):
        return VCompiledClosure(
            param,
            body,
            body_step,
            frame_size,
            capture_names,
            [frame[slot] for slot in capture_slots],
        )

    return step


def _compile_app(expr: App, scope: _Scope, p: int) -> Callable:
    fn, arg = expr.fn, expr.arg
    if isinstance(fn, Prim) and fn.name != "nproc":
        name = fn.name
        if name in BINARY_SCALAR and isinstance(arg, Pair):
            # Saturated binary primitive: skip the VPrim and VPair
            # allocations and the dispatch chain.  Charge and operand
            # order match the tree engine (App charges 1; Prim and Pair
            # charge 0; left operand first), and the dynamic kind
            # checks raise the exact apply_binary messages.
            left_step = _compile(arg.first, scope, p)
            right_step = _compile(arg.second, scope, p)
            op = BINARY_SCALAR[name]
            if name in BOOLEAN:

                def step(rt, frame):
                    rt.charge()
                    left = left_step(rt, frame)
                    right = right_step(rt, frame)
                    if not (left is True or left is False) or not (
                        right is True or right is False
                    ):
                        raise EvalError(f"operator {name!r} expects booleans")
                    return op(left, right)

                return step

            def step(rt, frame):
                rt.charge()
                left = left_step(rt, frame)
                right = right_step(rt, frame)
                if (
                    left is True
                    or left is False
                    or right is True
                    or right is False
                    or not isinstance(left, int)
                    or not isinstance(right, int)
                ):
                    raise EvalError(f"operator {name!r} expects integers")
                return op(left, right)

            return step
        # A primitive in function position evaluates to itself, so skip
        # straight to its application rule.
        arg_step = _compile(arg, scope, p)

        def step(rt, frame):
            rt.charge()
            return _apply_prim_value(rt, name, arg_step(rt, frame))

        return step

    fn_step = _compile(fn, scope, p)
    arg_step = _compile(arg, scope, p)

    def step(rt, frame):
        rt.charge()
        fn_value = fn_step(rt, frame)
        arg_value = arg_step(rt, frame)
        if type(fn_value) is VCompiledClosure:
            call_frame = [None] * fn_value.frame_size
            call_frame[0] = arg_value
            cells = fn_value.cells
            if cells:
                call_frame[1 : 1 + len(cells)] = cells
            return fn_value.code(rt, call_frame)
        return _apply_slow(rt, fn_value, arg_value)

    return step


# -- application --------------------------------------------------------------


def _call_compiled(rt: _Runtime, closure: VCompiledClosure, arg: Value) -> Value:
    frame = [None] * closure.frame_size
    frame[0] = arg
    cells = closure.cells
    if cells:
        frame[1 : 1 + len(cells)] = cells
    return closure.code(rt, frame)


def apply_value(rt: _Runtime, fn: Value, arg: Value) -> Value:
    """Apply ``fn`` to ``arg`` — the compiled engine's beta/delta rule."""
    if type(fn) is VCompiledClosure:
        return _call_compiled(rt, fn, arg)
    return _apply_slow(rt, fn, arg)


def _apply_slow(rt: _Runtime, fn: Value, arg: Value) -> Value:
    if isinstance(fn, VDelivered):
        if isinstance(arg, bool) or not isinstance(arg, int):
            raise EvalError("a delivered-messages function expects an int")
        return fn.lookup(arg)
    if isinstance(fn, VPrim):
        return _apply_prim_value(rt, fn.name, arg)
    if isinstance(fn, VClosure):
        return _apply_tree_closure(rt, fn, arg)
    raise EvalError(f"cannot apply a non-function ({type(fn).__name__})")


def _apply_tree_closure(rt: _Runtime, closure: VClosure, arg: Value) -> Value:
    """Engine interop: apply a tree-engine closure from compiled code.

    A shadow :class:`Evaluator` mirrors this runtime's context, so
    charges land exactly where the tree engine would put them (counted
    locally in component mode, otherwise straight onto the machine).
    """
    evaluator = Evaluator(rt.p, None if rt.counting else rt.machine)
    evaluator._proc = rt.proc
    evaluator._counting = rt.counting
    value = evaluator._eval(closure.body, {**closure.env, closure.param: arg})
    if rt.counting:
        rt.counted += evaluator._counted_ops
    return value


def call_compiled(evaluator: Evaluator, closure: VCompiledClosure, arg: Value) -> Value:
    """Engine interop: apply a compiled closure from the tree evaluator."""
    rt = _Runtime(
        evaluator.p,
        None if evaluator._counting else evaluator.machine,
        proc=evaluator._proc,
        counting=evaluator._counting,
    )
    value = _call_compiled(rt, closure, arg)
    if evaluator._counting:
        evaluator._counted_ops += rt.counted
    return value


def _apply_prim_value(rt: _Runtime, name: str, arg: Value) -> Value:
    if name in BINARY_SCALAR:
        if not isinstance(arg, VPair):
            raise EvalError(f"operator {name!r} expects a pair")
        return apply_binary(name, arg.first, arg.second)
    if name == "not":
        if not isinstance(arg, bool):
            raise EvalError("'not' expects a boolean")
        return not arg
    if name == "fst":
        if not isinstance(arg, VPair):
            raise EvalError("'fst' expects a pair")
        return arg.first
    if name == "snd":
        if not isinstance(arg, VPair):
            raise EvalError("'snd' expects a pair")
        return arg.second
    if name == "nc":
        return NC_VALUE
    if name == "isnc":
        return isinstance(arg, VNc)
    if name == "fix":
        return fix_value(rt.p, arg)
    if name == "ref":
        return VRef(cells=[arg] * rt.p, origin=rt.proc)
    if name == "!":
        return deref_ref(arg, rt.proc, rt.p)
    if name == ":=":
        if not (isinstance(arg, VPair) and isinstance(arg.first, VRef)):
            raise EvalError("':=' expects a (reference, value) pair")
        return assign_ref(arg.first, arg.second, rt.proc, rt.p)
    if name in PARALLEL_PRIMS:
        rt.require_global(name)
        if name == "mkpar":
            return rt.mkpar(arg)
        if name == "apply":
            return rt.parallel_apply(arg)
        return rt.put(arg)
    raise EvalError(f"unknown primitive {name!r}")


def fix_value(p: int, fn: Value) -> Value:
    """Call-by-value fixpoint over either engine's closures.

    For a compiled closure the knot is tied by *patching*: the outer
    closure's body is a ``Fun`` node, so invoking its compiled code
    (zero charge — closure creation costs nothing) yields the inner
    closure with a placeholder in the self-capture cell, which is then
    replaced by the inner closure itself.  Later activations copy the
    patched cell into their frames, so recursion works at any depth.
    """
    if isinstance(fn, VCompiledClosure):
        if not isinstance(fn.body, Fun):
            raise EvalError(
                "'fix' needs a functional body (fix (fun f -> fun x -> ...)); "
                "any other call-by-value fixpoint diverges"
            )
        rt = _Runtime(p)
        inner = _call_compiled(rt, fn, None)
        for index, name in enumerate(inner.capture_names):
            if name == fn.param:
                inner.cells[index] = inner
        return inner
    if isinstance(fn, VClosure):
        if not isinstance(fn.body, Fun):
            raise EvalError(
                "'fix' needs a functional body (fix (fun f -> fun x -> ...)); "
                "any other call-by-value fixpoint diverges"
            )
        env: Dict[str, Value] = dict(fn.env)
        recursive = VClosure(fn.body.param, fn.body.body, env)
        env[fn.param] = recursive
        return recursive
    raise EvalError("'fix' expects a function")


# -- the parallel operations --------------------------------------------------
#
# These mirror the tree engine's machine interactions call for call: the
# same run_superstep task structure with identical per-task op counts,
# the same exchange matrices under the same labels.  The per-process
# tasks are module-level (hence picklable when their arguments are;
# compiled closures are not, which makes the process backend fall back
# inline exactly as it does for any closure-carrying task).


def _component_task(p: int, proc: int, fn: Value, arg: Value):
    """One ``mkpar``/``apply`` component: apply ``fn`` to ``arg`` on ``proc``."""
    rt = _Runtime(p, proc=proc, counting=True)
    with deep_recursion():
        rt.charge()
        value = apply_value(rt, fn, arg)
    return value, rt.counted


def _put_row_task(p: int, proc: int, sender: Value):
    """One ``put`` sender: evaluate its message for every destination."""
    rt = _Runtime(p, proc=proc, counting=True)
    with deep_recursion():
        row = []
        for destination in range(p):
            rt.charge()
            row.append(apply_value(rt, sender, destination))
    return row, rt.counted


def _literal_task(p: int, proc: int, item_step: Callable, frame: list):
    """One component of a literal parallel-vector expression."""
    rt = _Runtime(p, proc=proc, counting=True)
    with deep_recursion():
        value = item_step(rt, frame)
    return value, rt.counted


class _OnProc:
    """Scoped switch of the runtime's current process (sequential,
    machine-less evaluation of per-component work).  Mirrors the tree
    engine's ``_ProcContext``, nested-parallelism rejection included."""

    __slots__ = ("rt", "proc", "saved")

    def __init__(self, rt: _Runtime, proc: int) -> None:
        self.rt = rt
        self.proc = proc
        self.saved: Optional[int] = None

    def __enter__(self) -> None:
        self.saved = self.rt.proc
        if self.saved is not None:
            raise DynamicNestingError(Prim("mkpar"), self.saved)
        self.rt.proc = self.proc

    def __exit__(self, *exc_info) -> None:
        self.rt.proc = self.saved


def _mkpar(rt: _Runtime, fn: Value) -> Value:
    p = rt.p
    if rt.machine is not None:
        tasks = [partial(_component_task, p, i, fn, i) for i in range(p)]
        return VParVec(tuple(rt.machine.run_superstep(tasks)))
    components = []
    for i in range(p):
        with _OnProc(rt, i):
            rt.charge()
            components.append(apply_value(rt, fn, i))
    return VParVec(tuple(components))


def _parallel_apply(rt: _Runtime, arg: Value) -> Value:
    if not (
        isinstance(arg, VPair)
        and isinstance(arg.first, VParVec)
        and isinstance(arg.second, VParVec)
    ):
        raise EvalError("'apply' expects a pair of parallel vectors")
    fns, values = arg.first, arg.second
    p = rt.p
    if rt.machine is not None:
        tasks = [
            partial(_component_task, p, i, fns.items[i], values.items[i])
            for i in range(p)
        ]
        return VParVec(tuple(rt.machine.run_superstep(tasks)))
    components = []
    for i in range(p):
        with _OnProc(rt, i):
            rt.charge()
            components.append(apply_value(rt, fns.items[i], values.items[i]))
    return VParVec(tuple(components))


def _put(rt: _Runtime, arg: Value) -> Value:
    if not isinstance(arg, VParVec):
        raise EvalError("'put' expects a parallel vector of functions")
    p = rt.p
    if rt.machine is not None:
        tasks = [partial(_put_row_task, p, j, arg.items[j]) for j in range(p)]
        outgoing = rt.machine.run_superstep(tasks)
    else:
        outgoing = []
        for j in range(p):
            with _OnProc(rt, j):
                row = []
                for i in range(p):
                    rt.charge()
                    row.append(apply_value(rt, arg.items[j], i))
                outgoing.append(row)
    if rt.machine is not None:
        sent = [
            [
                0 if isinstance(outgoing[j][i], VNc) else words(outgoing[j][i])
                for i in range(p)
            ]
            for j in range(p)
        ]
        rt.machine.exchange(sent, label="put")
    return VParVec(
        tuple(
            VDelivered(tuple(outgoing[j][i] for j in range(p)))
            for i in range(p)
        )
    )


def _compile_ifat(expr: IfAt, scope: _Scope, p: int) -> Callable:
    vec_step = _compile(expr.vec, scope, p)
    proc_step = _compile(expr.proc, scope, p)
    then_step = _compile(expr.then_branch, scope, p)
    else_step = _compile(expr.else_branch, scope, p)

    def step(rt, frame):
        rt.require_global("ifat")
        vec = vec_step(rt, frame)
        proc = proc_step(rt, frame)
        if not isinstance(vec, VParVec):
            raise EvalError("'if ... at' needs a parallel vector of booleans")
        if isinstance(proc, bool) or not isinstance(proc, int):
            raise EvalError("'if ... at' needs an integer process index")
        if not 0 <= proc < rt.p:
            raise EvalError(
                f"'if ... at' process index {proc} out of range (p = {rt.p})"
            )
        chosen = vec.items[proc]
        if not isinstance(chosen, bool):
            raise EvalError("'if ... at' vector holds a non-boolean")
        if rt.machine is not None:
            # Broadcast one boolean from ``proc`` to everyone, then barrier.
            sent = [[0] * rt.p for _ in range(rt.p)]
            for destination in range(rt.p):
                if destination != proc:
                    sent[proc][destination] = 1
            rt.machine.exchange(sent, label="if-at")
        return then_step(rt, frame) if chosen else else_step(rt, frame)

    return step


def _compile_parvec(expr: ParVec, scope: _Scope, p: int) -> Callable:
    item_steps = [_compile(item, scope, p) for item in expr.items]

    def step(rt, frame):
        if rt.machine is not None:
            tasks = [
                partial(_literal_task, rt.p, i, item_step, frame)
                for i, item_step in enumerate(item_steps)
            ]
            return VParVec(tuple(rt.machine.run_superstep(tasks)))
        components = []
        for i, item_step in enumerate(item_steps):
            with _OnProc(rt, i):
                components.append(item_step(rt, frame))
        return VParVec(tuple(components))

    return step


# -- entry points -------------------------------------------------------------


class CompiledProgram:
    """A mini-BSML expression lowered once, runnable many times.

    ``env_names`` are the free names the program may reference (a REPL
    session's definitions); they occupy the first slots of the top-level
    frame and :meth:`run` fills them from the ``env`` mapping.
    """

    def __init__(self, expr: Expr, p: int, env_names: Sequence[str] = ()) -> None:
        self.expr = expr
        self.p = p
        self.env_names = tuple(env_names)
        scope = _Scope(self.env_names)
        self._step = _compile(expr, scope, p)
        self._frame_size = scope.size

    def run(
        self,
        machine: Optional[BspMachine] = None,
        env: Optional[Dict[str, Value]] = None,
    ) -> Value:
        if machine is not None and machine.p != self.p:
            raise ValueError(
                f"machine width {machine.p} differs from p={self.p}"
            )
        frame: List = [None] * self._frame_size
        if self.env_names:
            bindings = env or {}
            for index, name in enumerate(self.env_names):
                frame[index] = bindings[name]
        rt = _Runtime(self.p, machine)
        with deep_recursion():
            return self._step(rt, frame)


def compile_program(
    expr: Expr, p: int, env_names: Sequence[str] = ()
) -> CompiledProgram:
    """Compile ``expr`` for a ``p``-process machine (compile once, run
    many — the compiler itself recurses over the AST)."""
    with deep_recursion():
        return CompiledProgram(expr, p, env_names)


class CompiledEvaluator:
    """Drop-in engine with the :class:`Evaluator` surface.

    ``eval`` compiles then runs; for the compile-once-run-many payoff
    use :func:`compile_program` directly and call
    :meth:`CompiledProgram.run` per execution.
    """

    def __init__(self, p: int, machine: Optional[BspMachine] = None) -> None:
        if machine is not None and machine.p != p:
            raise ValueError(f"machine width {machine.p} differs from p={p}")
        self.p = p
        self.machine = machine

    def eval(self, expr: Expr, env: Optional[Dict[str, Value]] = None) -> Value:
        names = tuple(sorted(env)) if env else ()
        program = compile_program(expr, self.p, names)
        return program.run(self.machine, env)

    def apply(self, fn: Value, arg: Value) -> Value:
        rt = _Runtime(self.p, self.machine)
        with deep_recursion():
            return apply_value(rt, fn, arg)


def run(
    expr: Expr,
    p: int,
    machine: Optional[BspMachine] = None,
    env: Optional[Dict[str, Value]] = None,
) -> Value:
    """Compile and evaluate ``expr`` on a ``p``-process machine."""
    return CompiledEvaluator(p, machine).eval(expr, env)
