"""SPMD-vectorized evaluator: compiled closures run once over p lanes.

The paper's premise is that one BSML program text runs at every BSP
process, so the compiled closure a ``mkpar``/``apply``/``put`` body
lowers to (:mod:`repro.semantics.compiled`) is the *same* code at all p
pids — yet the compiled engine still executes it p times per superstep.
This engine executes each such closure **once** over a length-p vector
of frames: every frame slot holds a lane-indexed column (a list of p
values), every compiled step becomes a *vector step* ``vstep(vx,
vframe)`` producing a column, and per-superstep interpreter overhead
collapses from O(p·ops) toward O(ops).

**Divergence peeling.**  SPMD lockstep breaks when control flow splits
on pid-dependent data: a ``case``/``if`` whose scrutinee differs across
lanes, an application whose function values no longer share compiled
code, or a lane that raises.  The vector context tracks the *active
lane set*; on a conditional split the majority side continues
vectorized (with the active set restricted) while the minority pids are
**peeled out of the batch** and finished through the existing compiled
scalar path — a twin step compiled against the very same slot layout,
run over a frame materialized from the lane's column entries.  A lane
that raises is *killed*: its exception is recorded and replayed inside
the superstep task, so error identity and timing are preserved.  Peels
and kills rejoin (or leave) the batch per lane; the happy path stays a
single vector execution.

**Cost identity is by construction.**  Each lane owns a counting
:class:`~repro.semantics.compiled._Runtime` (``proc=pid``, ``machine
= None``) — exactly the runtime a compiled per-component task would
thread — and every vector step charges the same ops at the same sites
(``vcharge`` is the vector form of ``rt.charge()``).  The batch runs
*before* the superstep; :meth:`BspMachine.run_superstep` then receives
p trivial *replay* tasks that return the memoized ``(value, ops)`` (or
re-raise the lane's recorded exception).  The machine sees the same
task structure, the same per-task op counts, the same exchange matrices
under the same labels — so :class:`BspCost`, the abstract trace
signature, and machine-side fault draws are bit-identical to the
``tree``/``compiled`` engines.  Because a replay task memoizes, it
would *not* re-execute lane effects (reference writes) under a
superstep retry the way a real component would — so an armed
:class:`~repro.bsp.faults.FaultPlan` or retry policy disables batching
wholesale and the engine falls back to the compiled path (counted under
``semantics.vectorized.fallback_pids``), keeping chaos schedules
exactly conformant.

Perf counters (``--stats``): ``semantics.vectorized.batched_steps``
(supersteps executed as one batch), ``semantics.vectorized
.fallback_pids`` (pids finished through the scalar compiled path),
``semantics.vectorized.peel_events`` (divergence splits).
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import perf
from repro.bsp.machine import BspMachine
from repro.lang.ast import (
    Annot,
    App,
    Case,
    Const,
    Expr,
    Fun,
    If,
    IfAt,
    Inl,
    Inr,
    Let,
    Pair,
    ParVec,
    Prim,
    Tuple as TupleE,
    Var,
)
from repro.lang.limits import deep_recursion
from repro.semantics import compiled as c
from repro.semantics.compiled import _Runtime, _Scope, fold_constant
from repro.semantics.errors import DynamicNestingError, EvalError
from repro.semantics.primops import BINARY_SCALAR, BOOLEAN
from repro.semantics.values import (
    NC_VALUE,
    Value,
    VClosure,
    VCompiledClosure,
    VDelivered,
    VInl,
    VInr,
    VNc,
    VPair,
    VParVec,
    VPrim,
    VTuple,
    words,
)

__all__ = [
    "VectorizedEvaluator",
    "VectorizedProgram",
    "compile_vectorized",
    "run",
]


# Singleton type sets for the uniform fast paths: one C-level
# ``set(map(type, column))`` pass proves a whole column has exactly one
# value kind (``bool`` cells fail the ``int`` check because ``type``
# does not collapse subclasses, and dead lanes' ``None`` cells fail
# every check, routing mixed columns to the careful per-lane loops).
_INT_ONLY = frozenset((int,))
_BOOL_ONLY = frozenset((bool,))
_PAIR_ONLY = frozenset((VPair,))
_DELIVERED_ONLY = frozenset((VDelivered,))


class _Drained(Exception):
    """Internal: every lane of the current batch has been killed."""


class _ClosureColumn(list):
    """A column of closures created lane-by-lane from one ``fun`` node.

    Every entry shares the same compiled code by construction, and the
    capture columns the cells were materialized from ride along — so
    applying the column skips the uniformity scan *and* rebuilding the
    capture columns from per-lane cells.  It is still a plain list of
    proper :class:`VCompiledClosure` values, so entries escape into
    frames, data structures and scalar fallbacks unchanged."""

    __slots__ = ("capture_columns",)


# -- the vector context -------------------------------------------------------


class _LazyRuntimes:
    """Per-lane counting runtimes, created on first touch.

    Most batched supersteps never leave the vector path, so the p
    scalar runtimes — needed only by elementwise prim application,
    divergence peeling and scalar fallbacks — are built lazily instead
    of p-per-superstep up front."""

    __slots__ = ("p", "made")

    def __init__(self, p: int) -> None:
        self.p = p
        self.made: Dict[int, _Runtime] = {}

    def __getitem__(self, lane: int) -> _Runtime:
        rt = self.made.get(lane)
        if rt is None:
            rt = self.made[lane] = _Runtime(self.p, proc=lane, counting=True)
        return rt


class _VectorCtx:
    """The shared state of one batched superstep execution.

    ``rts`` are the per-lane counting runtimes — one per pid, exactly
    what :func:`repro.semantics.compiled._component_task` would build —
    so charges land per lane and scalar fallbacks thread the real
    thing.  ``active`` is the sorted list of lanes still in the batch;
    ``errors`` maps a killed lane to the exception its replay task will
    re-raise.
    """

    __slots__ = (
        "p",
        "vcache",
        "rts",
        "active",
        "errors",
        "base",
        "counted",
        "divergent",
        "app_cache",
    )

    def __init__(self, p: int, vcache: Dict) -> None:
        self.p = p
        self.vcache = vcache
        self.rts = _LazyRuntimes(p)
        self.active: List[int] = list(range(p))
        self.errors: Dict[int, Exception] = {}
        #: Application memo for *stable* uniform columns (fix-patched
        #: recursive closures, broadcast cells): keyed by the identity
        #: of the lane-0 closure, holding the column snapshot (which
        #: pins the keys alive), the vector body and the prebuilt
        #: capture columns.  Verified per hit by a C-speed elementwise
        #: identity comparison against the snapshot.
        self.app_cache: Dict[int, Tuple] = {}
        #: Charges accrued while execution is still lockstep: every
        #: active lane has charged exactly ``base`` ops (killed lanes'
        #: counts never commit, so shrinking ``active`` keeps this
        #: exact).  The first divergence flushes ``base`` into the
        #: per-lane ``counted`` columns — O(1) charging on the happy
        #: path, per-lane precision after a split.
        self.base = 0.0
        self.counted = [0.0] * p
        self.divergent = False

    def vcharge(self, ops: float = 1.0) -> None:
        """Charge ``ops`` on every active lane — the vector ``charge``."""
        if not self.divergent:
            self.base += ops
            return
        counted = self.counted
        for lane in self.active:
            counted[lane] += ops

    def flush(self) -> None:
        """Enter divergent mode: materialize ``base`` per active lane so
        subsequent charges can differ across lanes."""
        if not self.divergent:
            base = self.base
            if base:
                counted = self.counted
                for lane in self.active:
                    counted[lane] += base
            self.base = 0.0
            self.divergent = True

    def lane_ops(self, lane: int) -> float:
        """The ops ``lane`` charged: lockstep base + post-divergence
        column + anything its scalar fallback runtime counted."""
        rt = self.rts.made.get(lane)
        scalar = rt.counted if rt is not None else 0.0
        return self.base + self.counted[lane] + scalar

    def kill(self, lane: int, error: Exception) -> None:
        """Peel ``lane`` out of the batch with ``error`` as its outcome."""
        self.errors[lane] = error
        self.active.remove(lane)
        if not self.active:
            raise _Drained


# -- vector compilation -------------------------------------------------------
#
# ``_vcompile`` mirrors ``compiled._compile`` node for node: the same
# binds in the same order against the same _Scope (so slot layouts
# agree with the scalar twins compiled for divergence peeling), the
# same charge sites, the same error messages.  A vector step returns a
# full-width column whose entries are meaningful for active lanes only.


def _kill_all(vx: _VectorCtx, make_error: Callable[[int], Exception]) -> None:
    for lane in list(vx.active):
        vx.kill(lane, make_error(lane))
    raise _Drained  # unreachable: the last kill raises


def _vcompile(expr: Expr, scope: _Scope, p: int) -> Callable:
    folded = fold_constant(expr, p)
    if folded is not None:
        value, ops = folded
        # One shared broadcast column for the program's lifetime:
        # columns are never mutated in place (frames replace slots
        # wholesale), so every evaluation can hand out the same list.
        column = [value] * p
        if ops:

            def vstep(vx, vframe):
                vx.vcharge(ops)
                return column

            return vstep

        def vstep(vx, vframe):
            return column

        return vstep

    if isinstance(expr, Var):
        slot = scope.slots.get(expr.name)
        if slot is None:
            name = expr.name

            def vstep(vx, vframe):
                _kill_all(vx, lambda lane: EvalError(f"unbound variable {name!r}"))

            return vstep

        def vstep(vx, vframe):
            return vframe[slot]

        return vstep

    if isinstance(expr, Const):
        const_column = [expr.value] * p

        def vstep(vx, vframe):
            return const_column

        return vstep

    if isinstance(expr, Prim):
        prim_column = (
            [p] * p if expr.name == "nproc" else [VPrim(expr.name)] * p
        )

        def vstep(vx, vframe):
            return prim_column

        return vstep

    if isinstance(expr, Fun):
        return _vcompile_fun(expr, scope, p)

    if isinstance(expr, App):
        return _vcompile_app(expr, scope, p)

    if isinstance(expr, Let):
        bound_vstep = _vcompile(expr.bound, scope, p)
        slot, saved = scope.bind(expr.name)
        body_vstep = _vcompile(expr.body, scope, p)
        scope.unbind(expr.name, saved)

        def vstep(vx, vframe):
            vx.vcharge()
            vframe[slot] = bound_vstep(vx, vframe)
            return body_vstep(vx, vframe)

        return vstep

    if isinstance(expr, Pair):
        first_vstep = _vcompile(expr.first, scope, p)
        second_vstep = _vcompile(expr.second, scope, p)

        def vstep(vx, vframe):
            firsts = first_vstep(vx, vframe)
            seconds = second_vstep(vx, vframe)
            # Constructors are total, so build the whole column in one
            # C-level map; dead lanes get a throwaway pair no one reads.
            return list(map(VPair, firsts, seconds))

        return vstep

    if isinstance(expr, TupleE):
        item_vsteps = [_vcompile(item, scope, p) for item in expr.items]

        def vstep(vx, vframe):
            columns = [item(vx, vframe) for item in item_vsteps]
            return [VTuple(row) for row in zip(*columns)]

        return vstep

    if isinstance(expr, If):
        return _vcompile_if(expr, scope, p)

    if isinstance(expr, Inl):
        inner_vstep = _vcompile(expr.value, scope, p)

        def vstep(vx, vframe):
            inner = inner_vstep(vx, vframe)
            return list(map(VInl, inner))

        return vstep

    if isinstance(expr, Inr):
        inner_vstep = _vcompile(expr.value, scope, p)

        def vstep(vx, vframe):
            inner = inner_vstep(vx, vframe)
            return list(map(VInr, inner))

        return vstep

    if isinstance(expr, Case):
        return _vcompile_case(expr, scope, p)

    if isinstance(expr, Annot):
        return _vcompile(expr.expr, scope, p)

    if isinstance(expr, (ParVec, IfAt)):
        # Parallel constructs inside a lane are dynamic nesting errors,
        # raised exactly where the scalar engines raise them (before
        # any charge): _OnProc rejects a parallel-vector literal with
        # the ``mkpar`` witness, ``if ... at`` names itself.
        operation = "mkpar" if isinstance(expr, ParVec) else "ifat"

        def vstep(vx, vframe):
            _kill_all(
                vx, lambda lane: DynamicNestingError(Prim(operation), lane)
            )

        return vstep

    kind = type(expr).__name__

    def vstep(vx, vframe):
        _kill_all(vx, lambda lane: EvalError(f"cannot evaluate node {kind}"))

    return vstep


def _vcompile_fun(expr: Fun, scope: _Scope, p: int) -> Callable:
    """A ``fun`` in vector context builds one closure per lane — all
    sharing the *same* compiled scalar code (``compiled._compile``), so
    the closures are ordinary :class:`VCompiledClosure` values: interop
    with the other engines is free, and a later application of the
    column is batch-eligible because every lane's ``code`` is the same
    object."""
    param, body = expr.param, expr.body
    capture_names = tuple(
        sorted(
            name
            for name in c.free_vars(body) - {param}
            if name in scope.slots
        )
    )
    capture_slots = [scope.slots[name] for name in capture_names]
    inner = _Scope((param,) + capture_names)
    body_step = c._compile(body, inner, p)
    frame_size = inner.size

    if not capture_slots:

        def vstep(vx, vframe):
            # No captures means no cells, so fix can never back-patch
            # this closure and no lane can observe identity: one shared
            # closure broadcast across the column is indistinguishable
            # from p fresh ones, and cheaper.
            closure = VCompiledClosure(
                param, body, body_step, frame_size, (), []
            )
            out = _ClosureColumn([closure] * p)
            out.capture_columns = ()
            return out

        return vstep

    def vstep(vx, vframe):
        columns = [vframe[slot] for slot in capture_slots]
        if len(vx.active) == p:
            # When every capture column is a broadcast (all cells the
            # identical object — common for captured functions and
            # replicated loop state), one shared closure serves every
            # lane: closure cells are only ever mutated by ``fix``,
            # which patches the *fresh inner* closure its call creates,
            # never one of these.
            cells = []
            for column in columns:
                cell = column[0]
                for other in column:
                    if other is not cell:
                        break
                else:
                    cells.append(cell)
                    continue
                break
            if len(cells) == len(columns):
                closure = VCompiledClosure(
                    param, body, body_step, frame_size, capture_names, cells
                )
                out = _ClosureColumn([closure] * p)
                out.capture_columns = columns
                return out
            out = _ClosureColumn(
                [
                    VCompiledClosure(
                        param,
                        body,
                        body_step,
                        frame_size,
                        capture_names,
                        list(row),
                    )
                    for row in zip(*columns)
                ]
            )
            out.capture_columns = columns
            return out
        plain = [None] * p
        for lane in vx.active:
            plain[lane] = VCompiledClosure(
                param,
                body,
                body_step,
                frame_size,
                capture_names,
                [column[lane] for column in columns],
            )
        return plain

    return vstep


def _vcompile_app(expr: App, scope: _Scope, p: int) -> Callable:
    fn, arg = expr.fn, expr.arg
    if isinstance(fn, Prim) and fn.name != "nproc":
        name = fn.name
        if name in BINARY_SCALAR and isinstance(arg, Pair):
            # Saturated binary primitive, vector form: charge once per
            # lane, evaluate both operand columns, combine elementwise
            # with the scalar fast path's exact kind checks/messages.
            left_vstep = _vcompile(arg.first, scope, p)
            right_vstep = _vcompile(arg.second, scope, p)
            op = BINARY_SCALAR[name]
            if name in BOOLEAN:

                def vstep(vx, vframe):
                    vx.vcharge()
                    lefts = left_vstep(vx, vframe)
                    rights = right_vstep(vx, vframe)
                    if (
                        set(map(type, lefts)) == _BOOL_ONLY
                        and set(map(type, rights)) == _BOOL_ONLY
                    ):
                        return list(map(op, lefts, rights))
                    out = [None] * p
                    for lane in list(vx.active):
                        left, right = lefts[lane], rights[lane]
                        if not (left is True or left is False) or not (
                            right is True or right is False
                        ):
                            vx.kill(
                                lane,
                                EvalError(
                                    f"operator {name!r} expects booleans"
                                ),
                            )
                            continue
                        out[lane] = op(left, right)
                    return out

                return vstep

            folded_right = fold_constant(arg.second, p)
            if folded_right is None:
                # fold_constant declines leaves; a literal int or
                # ``nproc`` is still a free constant (zero charge).
                if isinstance(arg.second, Const):
                    folded_right = (arg.second.value, 0.0)
                elif isinstance(arg.second, Prim) and arg.second.name == "nproc":
                    folded_right = (p, 0.0)
            if folded_right is not None and type(folded_right[0]) is int:
                # Constant integer right operand (loop bounds, literal
                # offsets): skip the right column and its type scan,
                # charging whatever the folded subtree charged at the
                # same point in evaluation order.
                k, right_ops = folded_right

                def vstep(vx, vframe):
                    vx.vcharge()
                    lefts = left_vstep(vx, vframe)
                    if right_ops:
                        vx.vcharge(right_ops)
                    if set(map(type, lefts)) == _INT_ONLY:
                        try:
                            return [op(left, k) for left in lefts]
                        except Exception:
                            pass
                    out = [None] * p
                    for lane in list(vx.active):
                        left = lefts[lane]
                        if (
                            left is True
                            or left is False
                            or not isinstance(left, int)
                        ):
                            vx.kill(
                                lane,
                                EvalError(
                                    f"operator {name!r} expects integers"
                                ),
                            )
                            continue
                        try:
                            out[lane] = op(left, k)
                        except Exception as error:
                            vx.kill(lane, error)
                    return out

                return vstep

            def vstep(vx, vframe):
                vx.vcharge()
                lefts = left_vstep(vx, vframe)
                rights = right_vstep(vx, vframe)
                # Uniform fast path: two C-level type scans prove every
                # cell (dead lanes included) is a plain int, then one
                # C-level map applies the operator.  ``bool`` cells fail
                # the scan (type is bool, not int), exactly matching the
                # scalar engine's kind check; any operator exception
                # (division by zero) falls back to the careful loop,
                # which re-runs the pure int ops to find the first
                # failing lane.
                if (
                    set(map(type, lefts)) == _INT_ONLY
                    and set(map(type, rights)) == _INT_ONLY
                ):
                    try:
                        return list(map(op, lefts, rights))
                    except Exception:
                        pass
                out = [None] * p
                for lane in list(vx.active):
                    left, right = lefts[lane], rights[lane]
                    if (
                        left is True
                        or left is False
                        or right is True
                        or right is False
                        or not isinstance(left, int)
                        or not isinstance(right, int)
                    ):
                        vx.kill(
                            lane,
                            EvalError(f"operator {name!r} expects integers"),
                        )
                        continue
                    try:
                        out[lane] = op(left, right)
                    except Exception as error:
                        vx.kill(lane, error)
                return out

            return vstep

        arg_vstep = _vcompile(arg, scope, p)
        if name == "fst" or name == "snd":
            use_first = name == "fst"

            def vstep(vx, vframe):
                vx.vcharge()
                args = arg_vstep(vx, vframe)
                if set(map(type, args)) == _PAIR_ONLY:
                    if use_first:
                        return [value.first for value in args]
                    return [value.second for value in args]
                out = [None] * p
                for lane in list(vx.active):
                    value = args[lane]
                    if isinstance(value, VPair):
                        out[lane] = value.first if use_first else value.second
                    else:
                        vx.kill(lane, EvalError(f"{name!r} expects a pair"))
                return out

            return vstep

        if name == "fix":

            def vstep(vx, vframe):
                vx.vcharge()
                args = arg_vstep(vx, vframe)
                # Batched fixpoint: a uniform ``fun``-built column whose
                # body is itself a ``Fun`` ties all p knots with one
                # vector application of the outer body (zero charge,
                # closure creation is free) followed by a per-lane cell
                # patch — the scalar ``fix_value`` run p times, without
                # p scalar body evaluations.  The patched column keeps
                # its ``_ClosureColumn`` fast path, so recursive calls
                # inside the loop never rescan for uniformity.
                if type(args) is _ClosureColumn:
                    outer = args[vx.active[0]]
                    if isinstance(outer.body, Fun):
                        recursive_name = outer.param
                        inner = _vapply(vx, args, [None] * p)
                        inner_first = inner[vx.active[0]]
                        for index, cname in enumerate(
                            inner_first.capture_names
                        ):
                            if cname == recursive_name:
                                for lane in vx.active:
                                    closure = inner[lane]
                                    closure.cells[index] = closure
                                if (
                                    type(inner) is _ClosureColumn
                                    and inner.capture_columns
                                ):
                                    columns = list(inner.capture_columns)
                                    columns[index] = inner
                                    inner.capture_columns = columns
                                break
                        return inner
                out = [None] * p
                for lane in list(vx.active):
                    try:
                        out[lane] = c._apply_prim_value(
                            vx.rts[lane], name, args[lane]
                        )
                    except Exception as error:
                        vx.kill(lane, error)
                return out

            return vstep

        def vstep(vx, vframe):
            vx.vcharge()
            args = arg_vstep(vx, vframe)
            out = [None] * p
            for lane in list(vx.active):
                try:
                    out[lane] = c._apply_prim_value(
                        vx.rts[lane], name, args[lane]
                    )
                except Exception as error:
                    vx.kill(lane, error)
            return out

        return vstep

    if type(fn) is App and not isinstance(fn.fn, Prim):
        # Curried double application ``f a b`` — the shape every
        # prelude loop takes (``loop (j + 1) acc'``).  When f's column
        # is uniform and its body is itself a ``fun``, the intermediate
        # closure column is write-only: build the inner body's frame
        # directly from f's frame instead of allocating p closures per
        # iteration.  Closure creation charges nothing, so skipping it
        # leaves every charge site (the two App charges, the operand
        # evaluations, the inner body) untouched.
        f_vstep = _vcompile(fn.fn, scope, p)
        a_vstep = _vcompile(fn.arg, scope, p)
        b_vstep = _vcompile(arg, scope, p)

        def vstep(vx, vframe):
            vx.vcharge()  # outer application
            vx.vcharge()  # inner application
            f_col = f_vstep(vx, vframe)
            a_col = a_vstep(vx, vframe)
            if type(f_col) is _ClosureColumn:
                first = f_col[vx.active[0]]
                if type(first.body) is Fun:
                    call2 = _call2_for(vx, first)
                    b_col = b_vstep(vx, vframe)
                    f_frame = [a_col]
                    f_frame.extend(f_col.capture_columns)
                    return call2(vx, f_frame, b_col)
            intermediate = _vapply(vx, f_col, a_col)
            b_col = b_vstep(vx, vframe)
            return _vapply(vx, intermediate, b_col)

        return vstep

    fn_vstep = _vcompile(fn, scope, p)
    arg_vstep = _vcompile(arg, scope, p)

    def vstep(vx, vframe):
        vx.vcharge()
        fn_column = fn_vstep(vx, vframe)
        arg_column = arg_vstep(vx, vframe)
        return _vapply(vx, fn_column, arg_column)

    return vstep


def _vcompile_if(expr: If, scope: _Scope, p: int) -> Callable:
    cond_vstep = _vcompile(expr.cond, scope, p)
    then_vstep = _vcompile(expr.then_branch, scope, p)
    then_twin = c._compile(expr.then_branch, scope, p)
    else_vstep = _vcompile(expr.else_branch, scope, p)
    else_twin = c._compile(expr.else_branch, scope, p)

    def vstep(vx, vframe):
        vx.vcharge()
        conditions = cond_vstep(vx, vframe)
        if set(map(type, conditions)) == _BOOL_ONLY:
            if all(conditions):
                return then_vstep(vx, vframe)
            if not any(conditions):
                return else_vstep(vx, vframe)
        true_lanes: List[int] = []
        false_lanes: List[int] = []
        for lane in list(vx.active):
            condition = conditions[lane]
            if condition is True:
                true_lanes.append(lane)
            elif condition is False:
                false_lanes.append(lane)
            else:
                vx.kill(
                    lane, EvalError("conditional on a non-boolean value")
                )
        if not false_lanes:
            return then_vstep(vx, vframe)
        if not true_lanes:
            return else_vstep(vx, vframe)
        if len(true_lanes) >= len(false_lanes):
            return _split(
                vx, vframe, true_lanes, then_vstep, false_lanes, else_twin
            )
        return _split(
            vx, vframe, false_lanes, else_vstep, true_lanes, then_twin
        )

    return vstep


def _vcompile_case(expr: Case, scope: _Scope, p: int) -> Callable:
    scrutinee_vstep = _vcompile(expr.scrutinee, scope, p)
    left_slot, saved = scope.bind(expr.left_name)
    left_vstep = _vcompile(expr.left_body, scope, p)
    left_twin = c._compile(expr.left_body, scope, p)
    scope.unbind(expr.left_name, saved)
    right_slot, saved = scope.bind(expr.right_name)
    right_vstep = _vcompile(expr.right_body, scope, p)
    right_twin = c._compile(expr.right_body, scope, p)
    scope.unbind(expr.right_name, saved)

    def vstep(vx, vframe):
        vx.vcharge()
        scrutinees = scrutinee_vstep(vx, vframe)
        left_lanes: List[int] = []
        right_lanes: List[int] = []
        for lane in list(vx.active):
            scrutinee = scrutinees[lane]
            if isinstance(scrutinee, VInl):
                left_lanes.append(lane)
            elif isinstance(scrutinee, VInr):
                right_lanes.append(lane)
            else:
                vx.kill(lane, EvalError("case on a non-sum value"))
        if not right_lanes:
            column = [None] * p
            for lane in left_lanes:
                column[lane] = scrutinees[lane].value
            vframe[left_slot] = column
            return left_vstep(vx, vframe)
        if not left_lanes:
            column = [None] * p
            for lane in right_lanes:
                column[lane] = scrutinees[lane].value
            vframe[right_slot] = column
            return right_vstep(vx, vframe)
        if len(left_lanes) >= len(right_lanes):
            column = [None] * p
            for lane in left_lanes:
                column[lane] = scrutinees[lane].value
            vframe[left_slot] = column
            return _split(
                vx,
                vframe,
                left_lanes,
                left_vstep,
                right_lanes,
                right_twin,
                binder=(right_slot, {l: scrutinees[l].value for l in right_lanes}),
            )
        column = [None] * p
        for lane in right_lanes:
            column[lane] = scrutinees[lane].value
        vframe[right_slot] = column
        return _split(
            vx,
            vframe,
            right_lanes,
            right_vstep,
            left_lanes,
            left_twin,
            binder=(left_slot, {l: scrutinees[l].value for l in left_lanes}),
        )

    return vstep


def _split(
    vx: _VectorCtx,
    vframe: List,
    batch_lanes: List[int],
    batch_vstep: Callable,
    peel_lanes: List[int],
    peel_step: Callable,
    binder: Optional[Tuple[int, Dict[int, Value]]] = None,
):
    """A divergence event: the majority side continues as the batch
    (active restricted to ``batch_lanes``), the minority pids are
    peeled through the compiled scalar twin over materialized frames.
    Survivors of both sides rejoin as the new active set."""
    vx.flush()
    if perf.is_collecting():
        perf.increment("semantics.vectorized.peel_events")
        perf.increment("semantics.vectorized.fallback_pids", len(peel_lanes))
    out = [None] * vx.p
    vx.active = batch_lanes
    try:
        column = batch_vstep(vx, vframe)
        for lane in vx.active:
            out[lane] = column[lane]
        survivors = list(vx.active)
    except _Drained:
        survivors = []
    for lane in peel_lanes:
        frame = [
            column[lane] if column is not None else None for column in vframe
        ]
        if binder is not None:
            frame[binder[0]] = binder[1][lane]
        try:
            out[lane] = peel_step(vx.rts[lane], frame)
            survivors.append(lane)
        except Exception as error:
            vx.errors[lane] = error
    if not survivors:
        vx.active = []
        raise _Drained
    survivors.sort()
    vx.active = survivors
    return out


# -- vector application -------------------------------------------------------


def _vcompiled_for(vx: _VectorCtx, closure: VCompiledClosure):
    """The vector step for ``closure``'s body, compiled on demand and
    memoized per compiled ``code`` object.  The scope starts from the
    closure's own frame layout (``[param, *captures, ...]``), so slot
    columns line up with the cells every lane carries."""
    entry = vx.vcache.get(closure.code)
    if entry is None:
        scope = _Scope((closure.param,) + closure.capture_names)
        vbody = _vcompile(closure.body, scope, vx.p)
        entry = (vbody, scope.size)
        vx.vcache[closure.code] = entry
    return entry


def _call2_for(vx: _VectorCtx, closure: VCompiledClosure):
    """Fused entry for a curried double application whose first step
    lands on ``closure`` (body known to be a ``fun``).  Returns
    ``call2(vx, f_frame, b_col)`` which runs the inner ``fun``'s body
    over a frame built straight from the outer frame's columns — the
    intermediate closure column the normal path would allocate is
    write-only, so it is never materialized.  Memoized per compiled
    ``code`` object alongside the normal vector-body entries."""
    key = (closure.code, 2)
    call2 = vx.vcache.get(key)
    if call2 is None:
        scope = _Scope((closure.param,) + closure.capture_names)
        fun_expr = closure.body
        param2, body2 = fun_expr.param, fun_expr.body
        capture_names2 = tuple(
            sorted(
                name
                for name in c.free_vars(body2) - {param2}
                if name in scope.slots
            )
        )
        capture_slots2 = [scope.slots[name] for name in capture_names2]
        inner_scope = _Scope((param2,) + capture_names2)
        inner_vbody = _vcompile(body2, inner_scope, vx.p)
        inner_size = inner_scope.size

        def call2(vx2, f_frame, b_col):
            frame2: List = [None] * inner_size
            frame2[0] = b_col
            index = 1
            for slot in capture_slots2:
                frame2[index] = f_frame[slot]
                index += 1
            return inner_vbody(vx2, frame2)

        vx.vcache[key] = call2
    return call2


def _vapply(vx: _VectorCtx, fn_column: List, arg_column: List):
    """Apply a function column to an argument column.

    When every active lane holds a compiled closure with the *same*
    code object — the SPMD common case — the body runs once over a
    fresh vector frame (argument column in slot 0, per-lane capture
    cells as columns).  Anything else goes elementwise through the
    compiled engine's ``apply_value`` against the lane's own counting
    runtime, which reproduces charges, messages and nesting rejection
    exactly; lanes whose application raises are killed."""
    active = vx.active
    p = vx.p
    if type(fn_column) is _ClosureColumn:
        # Fresh closures from one ``fun`` node: uniform by construction,
        # capture columns prebuilt — no scan, no transpose.
        first = fn_column[active[0]]
        entry = vx.vcache.get(first.code)
        if entry is None:
            entry = _vcompiled_for(vx, first)
        vbody, frame_size = entry
        vframe: List = [None] * frame_size
        vframe[0] = arg_column
        columns = fn_column.capture_columns
        if columns:
            vframe[1 : 1 + len(columns)] = columns
        return vbody(vx, vframe)
    first = fn_column[active[0]]
    kind = type(first)
    if kind is VCompiledClosure:
        cached = vx.app_cache.get(id(first))
        if cached is not None:
            snapshot, vbody, frame_size, columns = cached
            if tuple(fn_column) == snapshot:  # C-speed identity elementwise
                vframe = [None] * frame_size
                vframe[0] = arg_column
                if columns:
                    vframe[1 : 1 + len(columns)] = columns
                return vbody(vx, vframe)
        code = first.code
        uniform = True
        broadcast = True
        for lane in active:
            fn_value = fn_column[lane]
            if fn_value is first:
                continue
            broadcast = False
            if type(fn_value) is not VCompiledClosure or fn_value.code is not code:
                uniform = False
                break
        if uniform:
            vbody, frame_size = _vcompiled_for(vx, first)
            vframe = [None] * frame_size
            vframe[0] = arg_column
            capture_count = len(first.capture_names)
            columns = []
            if capture_count:
                if broadcast:
                    # One shared closure object: every lane sees the
                    # same cells, so the columns are broadcasts too.
                    columns = [[cell] * p for cell in first.cells]
                elif len(active) == p:
                    # Full-width but per-lane closures: transpose the
                    # cell rows into columns in one C-level pass.
                    columns = list(
                        zip(*[closure.cells for closure in fn_column])
                    )
                else:
                    for index in range(capture_count):
                        column = [None] * p
                        for lane in active:
                            column[lane] = fn_column[lane].cells[index]
                        columns.append(column)
                vframe[1 : 1 + capture_count] = columns
            if (broadcast or type(fn_column) is tuple) and len(active) == p:
                # Stable columns (fix-patched recursion, broadcast
                # cells) recur with the same objects — memoize.
                if len(vx.app_cache) >= 1024:
                    vx.app_cache.clear()
                vx.app_cache[id(first)] = (
                    tuple(fn_column),
                    vbody,
                    frame_size,
                    columns,
                )
            return vbody(vx, vframe)
    elif kind is VDelivered and (
        (uniform := set(map(type, fn_column)) == _DELIVERED_ONLY)
        or all(type(fn_column[lane]) is VDelivered for lane in active)
    ):
        # Delivered-messages lookups: total given an int (out-of-range
        # indices answer ``nc ()``), so only the argument kind can kill.
        # The whole-column fast path needs every cell — dead lanes too —
        # to be a delivered function, or the comprehension would trip on
        # a dead lane's leftover.
        if uniform and set(map(type, arg_column)) == _INT_ONLY:
            return [
                fn.messages[index] if 0 <= index < len(fn.messages) else NC_VALUE
                for fn, index in zip(fn_column, arg_column)
            ]
        out = [None] * p
        for lane in list(active):
            index = arg_column[lane]
            if type(index) is int:
                messages = fn_column[lane].messages
                out[lane] = (
                    messages[index]
                    if 0 <= index < len(messages)
                    else NC_VALUE
                )
            else:
                vx.kill(
                    lane,
                    EvalError("a delivered-messages function expects an int"),
                )
        return out
    if any(
        isinstance(fn_column[lane], (VClosure, VCompiledClosure))
        for lane in active
    ):
        # Closures without shared code charge per lane as they run —
        # leave lockstep accounting before the scalar applications.
        vx.flush()
        if perf.is_collecting():
            perf.increment("semantics.vectorized.peel_events")
            perf.increment("semantics.vectorized.fallback_pids", len(active))
    out = [None] * p
    for lane in list(active):
        try:
            out[lane] = c.apply_value(vx.rts[lane], fn_column[lane], arg_column[lane])
        except _Drained:  # pragma: no cover - scalar code cannot drain
            raise
        except Exception as error:
            vx.kill(lane, error)
    return out


# -- batched supersteps -------------------------------------------------------


def _replay(value, ops, error):
    """One lane's superstep task: hand back the batch-computed outcome.

    The machine sees p of these — the same task structure, per-task op
    counts and error behaviour as the compiled engine's per-component
    tasks, so cost commits, trace records and fault draws line up bit
    for bit.  (Replaying is only sound when a retry cannot demand real
    re-execution, hence batching is off under an armed fault plan.)
    """
    if error is not None:
        raise error
    return value, ops


def _batch_outcomes(vx: _VectorCtx, results: List) -> List[Tuple]:
    outcomes = []
    for lane in range(vx.p):
        error = vx.errors.get(lane)
        if error is not None:
            outcomes.append((None, 0.0, error))
        else:
            outcomes.append((results[lane], vx.lane_ops(lane), None))
    return outcomes


class _VectorRuntime(_Runtime):
    """The compiled runtime with the parallel primitives re-pointed at
    batched supersteps.  Everything outside ``mkpar``/``apply``/``put``
    — the replicated top level, ``if ... at``, parallel-vector literals
    — is compiled-engine code running unchanged."""

    __slots__ = ("vcache",)

    def __init__(
        self,
        p: int,
        machine: Optional[BspMachine] = None,
        vcache: Optional[Dict] = None,
    ) -> None:
        super().__init__(p, machine)
        self.vcache = {} if vcache is None else vcache

    def _batchable(self) -> bool:
        machine = self.machine
        if machine is None:
            # Uncosted evaluation has no supersteps to batch; the
            # compiled inline path is already a single sweep.
            return False
        if machine.faults is not None or machine.retry is not None:
            # A retry re-executes tasks; replaying a memoized outcome
            # would skip lane effects the scalar engines re-run.
            if perf.is_collecting():
                perf.increment(
                    "semantics.vectorized.fallback_pids", self.p
                )
            return False
        return True

    def mkpar(self, fn: Value) -> Value:
        if not self._batchable():
            return c._mkpar(self, fn)
        p = self.p
        if perf.is_collecting():
            perf.increment("semantics.vectorized.batched_steps")
        vx = _VectorCtx(p, self.vcache)
        results: List = [None] * p
        with deep_recursion():
            try:
                vx.vcharge()
                column = _vapply(vx, [fn] * p, list(range(p)))
                for lane in vx.active:
                    results[lane] = column[lane]
            except _Drained:
                pass
        tasks = [
            partial(_replay, *outcome) for outcome in _batch_outcomes(vx, results)
        ]
        return VParVec(tuple(self.machine.run_superstep(tasks)))

    def parallel_apply(self, arg: Value) -> Value:
        if not (
            isinstance(arg, VPair)
            and isinstance(arg.first, VParVec)
            and isinstance(arg.second, VParVec)
        ):
            raise EvalError("'apply' expects a pair of parallel vectors")
        if not self._batchable():
            return c._parallel_apply(self, arg)
        p = self.p
        if perf.is_collecting():
            perf.increment("semantics.vectorized.batched_steps")
        vx = _VectorCtx(p, self.vcache)
        results: List = [None] * p
        with deep_recursion():
            try:
                vx.vcharge()
                column = _vapply(vx, arg.first.items, list(arg.second.items))
                for lane in vx.active:
                    results[lane] = column[lane]
            except _Drained:
                pass
        tasks = [
            partial(_replay, *outcome) for outcome in _batch_outcomes(vx, results)
        ]
        return VParVec(tuple(self.machine.run_superstep(tasks)))

    def put(self, arg: Value) -> Value:
        if not isinstance(arg, VParVec):
            raise EvalError("'put' expects a parallel vector of functions")
        if not self._batchable():
            return c._put(self, arg)
        p = self.p
        if perf.is_collecting():
            perf.increment("semantics.vectorized.batched_steps")
        vx = _VectorCtx(p, self.vcache)
        senders = arg.items  # the tuple itself: app_cache-eligible
        columns: List[List] = []
        with deep_recursion():
            try:
                for destination in range(p):
                    vx.vcharge()
                    columns.append(_vapply(vx, senders, [destination] * p))
            except _Drained:
                pass
        if len(columns) == p and len(vx.active) == p:
            # No lane died: one C-level transpose gives the row-major
            # outgoing messages.
            rows: List[List] = list(map(list, zip(*columns)))
        else:
            rows = [[None] * p for _ in range(p)]
            for destination, column in enumerate(columns):
                for lane in vx.active:
                    rows[lane][destination] = column[lane]
        outcomes = []
        for lane in range(p):
            error = vx.errors.get(lane)
            if error is not None:
                outcomes.append((None, 0.0, error))
            else:
                outcomes.append((rows[lane], vx.lane_ops(lane), None))
        tasks = [partial(_replay, *outcome) for outcome in outcomes]
        outgoing = self.machine.run_superstep(tasks)
        sent = [
            [
                1
                if type(message) is int
                else (0 if isinstance(message, VNc) else words(message))
                for message in row
            ]
            for row in outgoing
        ]
        self.machine.exchange(sent, label="put")
        # ``zip(*outgoing)`` transposes rows (sender-major) into the
        # per-destination message tuples in one C pass.
        return VParVec(tuple(map(VDelivered, zip(*outgoing))))


# -- entry points -------------------------------------------------------------


class VectorizedProgram(c.CompiledProgram):
    """A compiled program whose parallel supersteps run batched.

    Compilation is the compiled engine's (same steps, same frame
    layout); only the runtime differs.  The vector-code cache persists
    across :meth:`run` calls — compile once, run many."""

    def __init__(self, expr: Expr, p: int, env_names: Sequence[str] = ()) -> None:
        super().__init__(expr, p, env_names)
        self.vcache: Dict = {}

    def run(
        self,
        machine: Optional[BspMachine] = None,
        env: Optional[Dict[str, Value]] = None,
    ) -> Value:
        if machine is not None and machine.p != self.p:
            raise ValueError(
                f"machine width {machine.p} differs from p={self.p}"
            )
        frame: List = [None] * self._frame_size
        if self.env_names:
            bindings = env or {}
            for index, name in enumerate(self.env_names):
                frame[index] = bindings[name]
        rt = _VectorRuntime(self.p, machine, self.vcache)
        with deep_recursion():
            return self._step(rt, frame)


def compile_vectorized(
    expr: Expr, p: int, env_names: Sequence[str] = ()
) -> VectorizedProgram:
    """Compile ``expr`` for batched execution on a ``p``-process machine."""
    with deep_recursion():
        return VectorizedProgram(expr, p, env_names)


class VectorizedEvaluator:
    """Drop-in engine with the :class:`Evaluator` surface.

    The vector-code cache is evaluator-scoped, so a REPL session or a
    service worker amortizes vector compilation across evaluations.
    """

    def __init__(self, p: int, machine: Optional[BspMachine] = None) -> None:
        if machine is not None and machine.p != p:
            raise ValueError(f"machine width {machine.p} differs from p={p}")
        self.p = p
        self.machine = machine
        self.vcache: Dict = {}

    def eval(self, expr: Expr, env: Optional[Dict[str, Value]] = None) -> Value:
        names = tuple(sorted(env)) if env else ()
        program = compile_vectorized(expr, self.p, names)
        program.vcache = self.vcache
        return program.run(self.machine, env)

    def apply(self, fn: Value, arg: Value) -> Value:
        rt = _VectorRuntime(self.p, self.machine, self.vcache)
        with deep_recursion():
            return c.apply_value(rt, fn, arg)


def run(
    expr: Expr,
    p: int,
    machine: Optional[BspMachine] = None,
    env: Optional[Dict[str, Value]] = None,
) -> Value:
    """Compile and evaluate ``expr`` with batched supersteps."""
    return VectorizedEvaluator(p, machine).eval(expr, env)
