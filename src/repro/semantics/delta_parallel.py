"""Global (parallel) delta-rules (Figure 2) as rewrites on the AST.

These rules mention the machine size ``p``: there is one dynamic semantics
per value of ``p``, as the paper notes.

* ``mkpar v``              -> ``< v applied at 0, ..., v applied at p-1 >``
  (when ``v`` is ``fun x -> e`` the application is the substitution
  ``e[x <- i]`` exactly as in the figure; other functional values — a
  primitive, a partially applied closure — step to an application node
  that keeps reducing inside the component)
* ``apply (<f0,...>, <v0,...>)`` -> ``< f0 v0, ..., f_{p-1} v_{p-1} >``
* ``put <g0, ..., g_{p-1}>``     -> componentwise let-chains that evaluate
  every message ``g_j i`` and rebuild the delivered-messages function
  ``fun x -> if x = 0 then v0 else ... else nc ()`` (Figure 2 verbatim,
  including the freshness side condition on the ``v_j`` names)
* ``if <..,b_n,..> at n then e1 else e2`` -> ``e1`` or ``e2`` by ``b_n``
"""

from __future__ import annotations

from typing import Optional

from repro.lang.ast import (
    NC,
    App,
    Const,
    Expr,
    Fun,
    If,
    IfAt,
    Let,
    Pair,
    ParVec,
    Prim,
    Var,
    is_value_syntax,
)
from repro.lang.substitution import free_vars, fresh_name, substitute

#: Prefix used for the ``put`` rule's fresh message names.
_MSG_PREFIX = "msg"


def _apply_value(fn: Expr, arg: Expr) -> Expr:
    """Build the component expression for applying a functional value.

    For a lambda this is the beta substitution of Figure 2; for any other
    functional value (primitive, partial application) it is an application
    node, which the contextual rules keep reducing inside the component.
    """
    if isinstance(fn, Fun):
        return substitute(fn.body, fn.param, arg)
    return App(fn, arg)


def delta_mkpar(arg: Expr, p: int) -> Optional[Expr]:
    """``mkpar v -> < v 0, ..., v (p-1) >``."""
    if not is_value_syntax(arg) or isinstance(arg, ParVec):
        return None
    return ParVec(tuple(_apply_value(arg, Const(i)) for i in range(p)))


def delta_apply(arg: Expr, p: int) -> Optional[Expr]:
    """``apply (<f_i>, <v_i>) -> < f_i v_i >`` (argument is a pair)."""
    if not (
        isinstance(arg, Pair)
        and isinstance(arg.first, ParVec)
        and isinstance(arg.second, ParVec)
    ):
        return None
    fns, args = arg.first, arg.second
    if fns.width != p or args.width != p:
        return None
    if not (is_value_syntax(fns) and is_value_syntax(args)):
        return None
    return ParVec(
        tuple(_apply_value(fn, value) for fn, value in zip(fns.items, args.items))
    )


def delta_put(arg: Expr, p: int) -> Optional[Expr]:
    """The ``put`` rule of Figure 2.

    For every destination ``i`` the reduct's component is::

        let msg_0 = g_0 i in ... let msg_{p-1} = g_{p-1} i in
        fun x -> if x = 0 then msg_0 else ... else nc ()

    with ``msg_j`` fresh for the free variables of every ``g_j`` (the
    figure's side condition ``v_j^i not in F(e_j)``).
    """
    if not (isinstance(arg, ParVec) and arg.width == p and is_value_syntax(arg)):
        return None
    avoid = set()
    for sender in arg.items:
        avoid |= free_vars(sender)
    names = []
    for j in range(p):
        name = fresh_name(avoid, f"{_MSG_PREFIX}{j}")
        avoid.add(name)
        names.append(name)
    components = []
    for i in range(p):
        body: Expr = _delivered_function(names, p)
        for j in reversed(range(p)):
            body = Let(names[j], _apply_value(arg.items[j], Const(i)), body)
        components.append(body)
    return ParVec(tuple(components))


def _delivered_function(names: list, p: int) -> Expr:
    """``fun x -> if x = 0 then msg_0 else ... else nc ()``."""
    result: Expr = NC
    for j in reversed(range(p)):
        condition = App(Prim("="), Pair(Var("x"), Const(j)))
        result = If(condition, Var(names[j]), result)
    return Fun("x", result)


def delta_ifat(expr: IfAt, p: int) -> Optional[Expr]:
    """``if <.., b_n, ..> at n then e1 else e2 -> e1 | e2``."""
    if not (isinstance(expr.vec, ParVec) and expr.vec.width == p):
        return None
    if not isinstance(expr.proc, Const) or isinstance(expr.proc.value, bool):
        return None
    if not isinstance(expr.proc.value, int):
        return None
    n = expr.proc.value
    if not 0 <= n < p:
        return None
    chosen = expr.vec.items[n]
    if not (isinstance(chosen, Const) and isinstance(chosen.value, bool)):
        return None
    return expr.then_branch if chosen.value else expr.else_branch
