"""Evaluation errors raised by the dynamic semantics."""

from __future__ import annotations

from typing import Optional

from repro.lang.ast import Expr
from repro.lang.errors import ReproError


class EvalError(ReproError):
    """Base class of all evaluation failures."""


class StuckError(EvalError):
    """An expression in normal form that is not a value.

    By Theorem 1 (typing safety) this never happens to a well-typed
    program; ``diagnosis`` explains what went wrong for ill-typed ones
    (the interesting case being dynamic parallel-vector nesting).
    """

    def __init__(self, expr: Expr, diagnosis: str = "") -> None:
        self.expr = expr
        self.diagnosis = diagnosis
        message = "evaluation is stuck"
        if diagnosis:
            message += f": {diagnosis}"
        super().__init__(message)


class DynamicNestingError(EvalError):
    """A parallel primitive showed up inside a parallel-vector component.

    This is the runtime shadow of the static :class:`NestingError` — the
    behaviour the paper's type system exists to prevent (section 2.1: the
    cost model stops being compositional, and mismatched barriers make the
    machine's behaviour unpredictable).
    """

    def __init__(self, expr: Expr, proc: Optional[int] = None) -> None:
        self.expr = expr
        self.proc = proc
        where = f" at process {proc}" if proc is not None else ""
        super().__init__(
            f"parallel operation inside a parallel vector component{where}"
        )


class ReplicaDivergenceError(EvalError):
    """A replicated reference was read globally after diverging.

    The section 6 scenario: a reference created in replicated (global)
    context exists once per process; assigning it inside a parallel
    vector component desynchronizes the replicas, and a later *global*
    dereference would yield a different value on every process — the
    behaviour the paper's planned effect typing is meant to exclude.
    This reproduction detects it dynamically.
    """


class RefContextError(EvalError):
    """A reference used outside the process context that created it."""


class DivisionByZeroError(EvalError):
    """Integer division or modulo by zero."""


class StepLimitExceeded(EvalError):
    """The small-step machine hit its fuel limit (probable divergence)."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        super().__init__(f"no value after {limit} reduction steps")
