"""Shared meaning of the scalar primitive operators.

All evaluators (the AST-rewriting small-step machine, the
environment-based big-step evaluator, and the closure-compiling engine)
delegate the arithmetic, comparison and boolean delta-rules to these
tables — and the imperative extension's reference access rules to
:func:`deref_ref`/:func:`assign_ref` — so the semantics cannot drift
apart on scalar or reference behaviour.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.semantics.errors import (
    DivisionByZeroError,
    RefContextError,
    ReplicaDivergenceError,
)


def _div(a: int, b: int) -> int:
    if b == 0:
        raise DivisionByZeroError("division by zero")
    # OCaml semantics: truncation toward zero.
    return int(a / b)


def _mod(a: int, b: int) -> int:
    if b == 0:
        raise DivisionByZeroError("modulo by zero")
    # OCaml: a mod b has the sign of a and |a mod b| < |b|.
    return a - b * int(a / b)


#: (int * int) -> int operators.
ARITHMETIC: Dict[str, Callable[[int, int], int]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _div,
    "mod": _mod,
}

#: (int * int) -> bool operators.
COMPARISON: Dict[str, Callable[[int, int], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

#: (bool * bool) -> bool operators.
BOOLEAN: Dict[str, Callable[[bool, bool], bool]] = {
    "&&": lambda a, b: a and b,
    "||": lambda a, b: a or b,
}

#: All binary scalar operators (their arguments arrive as a pair).
BINARY_SCALAR = {**ARITHMETIC, **COMPARISON, **BOOLEAN}


def _is_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def apply_binary(name: str, left, right):
    """Apply a binary scalar operator with dynamic kind checks.

    Mirrors the partiality of the delta-rules: an integer operator on a
    boolean (or vice versa) has no rule — here that raises
    :class:`~repro.semantics.errors.EvalError` instead of getting Python's
    bool-int coercion.
    """
    from repro.semantics.errors import EvalError

    if name in BOOLEAN:
        if not (isinstance(left, bool) and isinstance(right, bool)):
            raise EvalError(f"operator {name!r} expects booleans")
        return BOOLEAN[name](left, right)
    if name in ARITHMETIC or name in COMPARISON:
        if not (_is_int(left) and _is_int(right)):
            raise EvalError(f"operator {name!r} expects integers")
        return BINARY_SCALAR[name](left, right)
    raise EvalError(f"unknown binary operator {name!r}")

#: The four parallel primitives of the paper.
PARALLEL_PRIMS = frozenset(("mkpar", "apply", "put"))


def deref_ref(ref, proc: Optional[int], p: int):
    """Dereference ``ref`` in context ``proc`` (None = replicated).

    Enforces the locality discipline of the imperative extension (paper
    section 6): a component-local reference may only be read on its
    creating process, and a replicated reference may only be read
    globally while its per-process replicas still agree.
    """
    from repro.semantics.errors import EvalError
    from repro.semantics.values import VRef

    if not isinstance(ref, VRef):
        raise EvalError("'!' expects a reference")
    if proc is not None:
        if ref.origin is not None and ref.origin != proc:
            raise RefContextError(
                f"reference created on process {ref.origin} dereferenced "
                f"on process {proc}"
            )
        return ref.cells[proc]
    if ref.origin is not None:
        raise RefContextError(
            f"reference created on process {ref.origin} dereferenced "
            "in replicated (global) context"
        )
    if not ref.coherent:
        raise ReplicaDivergenceError(
            "global dereference of a diverged replicated reference: its "
            f"per-process values are {ref.cells!r} — assigning inside a "
            "parallel vector desynchronized the replicas (the section 6 "
            "scenario the paper's planned effect typing would reject)"
        )
    return ref.cells[0]


def assign_ref(ref, value, proc: Optional[int], p: int):
    """Assign ``value`` through ``ref`` in context ``proc``; returns unit.

    In replicated context every process replica is updated (the SPMD
    reading of a global assignment); inside a parallel-vector component
    only that process's cell changes.
    """
    from repro.lang.ast import UNIT

    if proc is not None:
        if ref.origin is not None and ref.origin != proc:
            raise RefContextError(
                f"reference created on process {ref.origin} assigned "
                f"on process {proc}"
            )
        ref.cells[proc] = value
    else:
        if ref.origin is not None:
            raise RefContextError(
                f"reference created on process {ref.origin} assigned "
                "in replicated (global) context"
            )
        for i in range(p):
            ref.cells[i] = value
    return UNIT
