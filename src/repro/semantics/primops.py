"""Shared meaning of the scalar primitive operators.

Both evaluators (the AST-rewriting small-step machine and the
environment-based big-step evaluator) delegate the arithmetic, comparison
and boolean delta-rules to these tables so the two semantics cannot drift
apart on scalar behaviour.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.semantics.errors import DivisionByZeroError


def _div(a: int, b: int) -> int:
    if b == 0:
        raise DivisionByZeroError("division by zero")
    # OCaml semantics: truncation toward zero.
    return int(a / b)


def _mod(a: int, b: int) -> int:
    if b == 0:
        raise DivisionByZeroError("modulo by zero")
    # OCaml: a mod b has the sign of a and |a mod b| < |b|.
    return a - b * int(a / b)


#: (int * int) -> int operators.
ARITHMETIC: Dict[str, Callable[[int, int], int]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _div,
    "mod": _mod,
}

#: (int * int) -> bool operators.
COMPARISON: Dict[str, Callable[[int, int], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

#: (bool * bool) -> bool operators.
BOOLEAN: Dict[str, Callable[[bool, bool], bool]] = {
    "&&": lambda a, b: a and b,
    "||": lambda a, b: a or b,
}

#: All binary scalar operators (their arguments arrive as a pair).
BINARY_SCALAR = {**ARITHMETIC, **COMPARISON, **BOOLEAN}


def _is_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def apply_binary(name: str, left, right):
    """Apply a binary scalar operator with dynamic kind checks.

    Mirrors the partiality of the delta-rules: an integer operator on a
    boolean (or vice versa) has no rule — here that raises
    :class:`~repro.semantics.errors.EvalError` instead of getting Python's
    bool-int coercion.
    """
    from repro.semantics.errors import EvalError

    if name in BOOLEAN:
        if not (isinstance(left, bool) and isinstance(right, bool)):
            raise EvalError(f"operator {name!r} expects booleans")
        return BOOLEAN[name](left, right)
    if name in ARITHMETIC or name in COMPARISON:
        if not (_is_int(left) and _is_int(right)):
            raise EvalError(f"operator {name!r} expects integers")
        return BINARY_SCALAR[name](left, right)
    raise EvalError(f"unknown binary operator {name!r}")

#: The four parallel primitives of the paper.
PARALLEL_PRIMS = frozenset(("mkpar", "apply", "put"))
