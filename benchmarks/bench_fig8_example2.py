"""E6 + E9 — Figure 8: the rejection of example2 (and example1).

Regenerates the figure's judgement: typing
``fun pid -> let this = mkpar (fun i -> i) in pid`` under
``E = {pid : int}`` fails at the (Let) rule with the unsatisfiable
constraint ``L(int) => L(int par)``.  Also reproduces example1, whose
nesting *is* visible in the (Milner) type, and benchmarks the rejection.
"""

from __future__ import annotations

import pytest

from repro.core.errors import NestingError
from repro.core.infer import infer
from repro.core.judgments import explain
from repro.core.milner import milner_infer
from repro.core.prelude_env import prelude_env
from repro.core.schemes import TypeEnv, mono
from repro.core.types import INT, render_type
from repro.lang.parser import parse_expression as parse, parse_program
from repro.lang.prelude import with_prelude

from _util import save_text

EXAMPLE2 = "mkpar (fun pid -> let this = mkpar (fun i -> i) in pid)"
EXAMPLE1 = "mkpar (fun pid -> bcast pid (mkpar (fun i -> i)))"


def test_figure8_derivation(benchmark):
    env = TypeEnv.empty().extend("pid", mono(INT))
    explanation = explain(parse("let this = mkpar (fun i -> i) in pid"), env)
    assert not explanation.accepted
    assert explanation.derivation.rule == "Let"
    tree = explanation.render(max_width=120)
    assert ": ?" in tree
    from repro.core.latex import explanation_to_latex

    save_text("fig8_latex", explanation_to_latex(explanation, standalone=True) + "\n")
    save_text(
        "fig8_example2_judgement",
        "Figure 8 — the judgement of (a part of) example2, E = {pid : int}\n\n"
        + tree
        + "\n\nThe (Let) rule adds L(int) => L(int par) = True => False, so "
        "Solve(C) = False and the derivation cannot be completed.\n",
    )
    benchmark(lambda: explain(parse(EXAMPLE2)))


def test_example2_full_program_rejected(benchmark):
    expr = parse(EXAMPLE2)
    with pytest.raises(NestingError):
        infer(expr)
    assert render_type(milner_infer(expr)) == "int par"

    def reject():
        try:
            infer(expr)
            return False
        except NestingError:
            return True

    assert benchmark(reject)


def test_example1_rejected_with_nested_milner_type(benchmark):
    expr = with_prelude(parse_program(EXAMPLE1))
    with pytest.raises(NestingError):
        infer(expr)
    assert render_type(milner_infer(expr)) == "int par par"

    def reject():
        try:
            infer(expr)
            return False
        except NestingError:
            return True

    assert benchmark(reject)
