"""Shared helpers for the benchmark/reproduction suite.

Each ``bench_*`` module regenerates one of the paper's figures or
formulas: it *asserts* the claim (so ``pytest benchmarks/`` is a second
test suite), benchmarks the relevant operation with pytest-benchmark, and
writes the regenerated table to ``benchmarks/results/<name>.txt`` so the
artifacts can be inspected after a run (they are also indexed by
EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Sequence

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def write_table(
    name: str,
    title: str,
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
    footer: str = "",
) -> str:
    """Format an aligned text table, save it, and return it."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(column) for column in header]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, ""]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    if footer:
        lines.append("")
        lines.append(footer)
    text = "\n".join(lines) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print("\n" + text)
    return text


def save_text(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print("\n" + text)
