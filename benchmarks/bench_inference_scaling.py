"""E17 — inference scalability: time vs program size.

The paper reports having implemented its inference algorithm for use with
BSMLlib; for that to be credible the algorithm must scale to real
programs.  This bench times inference over generated programs of growing
AST size and over increasingly deep/wide shapes, and records the curve.
"""

from __future__ import annotations

import time

from repro.core.infer import infer
from repro.core.prelude_env import prelude_env
from repro.lang.parser import parse_expression as parse
from repro.testing.generators import ProgramGenerator

from _util import write_table


# Seed -> size-bucket map, precomputed once and committed.  The original
# implementation rescanned generator seeds on every run — generating and
# discarding up to 4000 programs to find the 12 that land in a bucket.
# The first-fit scan (seeds ascending, first bucket whose 0.6x..1.6x
# window contains the program and still has room) is deterministic, so
# its outcome is recorded here and only the matching seeds are ever
# regenerated.  ``_assert_bucket_fill`` re-checks the window and fill
# deterministically so a generator change fails loudly instead of
# silently shifting the curve.
_BUCKET_SEEDS = {30: (0, 1, 4), 100: (7, 9, 10), 250: (3, 6, 11), 500: (19, 51, 79)}
_PROGRAMS_PER_BUCKET = 3
_bucket_cache: dict = {}


def _assert_bucket_fill(buckets):
    for target, programs in buckets.items():
        assert len(programs) == _PROGRAMS_PER_BUCKET, (
            f"bucket ~{target} holds {len(programs)} programs, "
            f"expected {_PROGRAMS_PER_BUCKET} (generator drifted? recompute "
            f"_BUCKET_SEEDS)"
        )
        for seed, program in zip(_BUCKET_SEEDS[target], programs):
            assert 0.6 * target <= program.size() <= 1.6 * target, (
                f"seed {seed} produced size {program.size()}, outside the "
                f"~{target} bucket (generator drifted? recompute _BUCKET_SEEDS)"
            )


def _generated_programs(target_sizes):
    """Random programs bucketed by AST size (cached per module)."""
    key = tuple(target_sizes)
    if key not in _bucket_cache:
        buckets = {
            target: [
                ProgramGenerator(seed=seed, p_hint=2).expression(depth=3 + seed % 4)
                for seed in _BUCKET_SEEDS[target]
            ]
            for target in target_sizes
        }
        _assert_bucket_fill(buckets)
        _bucket_cache[key] = buckets
    return _bucket_cache[key]


def test_scaling_on_random_programs(benchmark):
    buckets = _generated_programs((30, 100, 250, 500))
    rows = []
    for target, programs in sorted(buckets.items()):
        assert programs, f"no programs of size ~{target} generated"
        sizes = [program.size() for program in programs]
        start = time.perf_counter()
        for program in programs:
            infer(program)
        elapsed = (time.perf_counter() - start) / len(programs)
        rows.append(
            (target, f"{sum(sizes)/len(sizes):.0f}", len(programs),
             f"{elapsed * 1e3:.2f}")
        )
    write_table(
        "inference_scaling",
        "Inference time vs program size (random well-typed programs)",
        ("size bucket", "mean AST nodes", "programs", "mean infer ms"),
        rows,
    )
    sample = buckets[250][0]
    benchmark(lambda: infer(sample))


def _deep_let_program(n: int) -> str:
    lines = [f"let x{i} = x{i-1} + {i} in" if i else "let x0 = 1 in" for i in range(n)]
    lines.append(f"x{n-1}")
    return "\n".join(lines)


def _wide_application_program(n: int) -> str:
    terms = " + ".join(f"f {i}" for i in range(n))
    return f"let f = fun x -> x * 2 in {terms}"


def test_scaling_shapes(benchmark):
    rows = []
    for n in (10, 50, 200, 500):
        deep = parse(_deep_let_program(n))
        start = time.perf_counter()
        infer(deep)
        deep_ms = (time.perf_counter() - start) * 1e3

        wide = parse(_wide_application_program(n))
        start = time.perf_counter()
        infer(wide)
        wide_ms = (time.perf_counter() - start) * 1e3
        rows.append((n, f"{deep_ms:.2f}", f"{wide_ms:.2f}"))
    write_table(
        "inference_scaling_shapes",
        "Inference time on adversarial shapes (n lets deep / n calls wide)",
        ("n", "deep lets ms", "wide apps ms"),
        rows,
    )
    program = parse(_deep_let_program(200))
    benchmark(lambda: infer(program))


def test_scaling_with_prelude_environment(benchmark):
    """Typing a realistic parallel program against the prelude."""
    env = prelude_env()
    source = """
        let sumpair = fun ab -> fst ab + snd ab in
        let sums = scan sumpair (mkpar (fun i -> i + 1)) in
        let top = bcast (nproc - 1) sums in
        apply (mkpar (fun i -> fun t -> t - i), top)
    """
    expr = parse(source)
    ct = benchmark(lambda: infer(expr, env))
    from repro.core.types import render_type

    assert render_type(infer(expr, env).type) == "int par"
