"""E19 — BSP graph algorithms: superstep counts track graph depth.

The BSP prediction for level-synchronous algorithms: barriers scale with
the *depth* of the computation, not the data size.  This bench measures
BFS supersteps across graph shapes of equal size but different depth, and
label-propagation rounds against planted diameters.
"""

from __future__ import annotations

from repro.bsp.params import BspParams
from repro.bsml.algorithms import collect
from repro.bsml.graphs import bfs, connected_components, distribute_graph
from repro.bsml.primitives import Bsml

from _util import write_table

PARAMS = BspParams(p=4, g=2.0, l=100.0)


def _shapes(n: int):
    path = [(i, i + 1) for i in range(n - 1)]
    star = [(0, i) for i in range(1, n)]
    tree = [(i, 2 * i + 1) for i in range(n) if 2 * i + 1 < n]
    tree += [(i, 2 * i + 2) for i in range(n) if 2 * i + 2 < n]
    return {"path": path, "binary tree": tree, "star": star}


def test_bfs_supersteps_scale_with_depth(benchmark):
    n = 32
    rows = []
    measured = {}
    for name, edges in _shapes(n).items():
        ctx = Bsml(PARAMS)
        graph = distribute_graph(ctx, n, edges)
        ctx.reset_cost()
        levels = collect(bfs(ctx, n, graph, 0))
        depth = max(levels)
        supersteps = ctx.cost().S
        measured[name] = (depth, supersteps)
        # One (fold + put) round per level plus trailing round + final fold.
        assert supersteps == 2 * (depth + 1) + 1, name
        rows.append((name, n, depth, supersteps))
    assert measured["star"][1] < measured["binary tree"][1] < measured["path"][1]
    write_table(
        "graphs_bfs_depth",
        f"BFS supersteps track graph depth, not size (n = {n}, p = {PARAMS.p})",
        ("graph", "vertices", "depth", "supersteps"),
        rows,
        footer="S = 2*(depth+1) + 1 exactly: one fold+put round per level, "
        "one empty trailing round, one quiescence fold.",
    )

    edges = _shapes(n)["binary tree"]

    def run_bfs():
        ctx = Bsml(PARAMS)
        graph = distribute_graph(ctx, n, edges)
        return collect(bfs(ctx, n, graph, 0))

    benchmark(run_bfs)


def test_components_rounds_scale_with_diameter(benchmark):
    rows = []
    for n in (8, 16, 32):
        ctx = Bsml(PARAMS)
        path = [(i, i + 1) for i in range(n - 1)]
        graph = distribute_graph(ctx, n, path)
        ctx.reset_cost()
        labels = collect(connected_components(ctx, n, graph))
        assert labels == [0] * n
        rows.append((f"path({n})", n - 1, ctx.cost().S))
    write_table(
        "graphs_components_diameter",
        "Label propagation: rounds grow with the diameter",
        ("graph", "diameter", "supersteps"),
        rows,
    )

    def run_components():
        ctx = Bsml(PARAMS)
        graph = distribute_graph(ctx, 16, [(i, i + 1) for i in range(15)])
        return collect(connected_components(ctx, 16, graph))

    benchmark(run_components)
