"""E4 — Figure 6: the initial environment ``TC``.

Regenerates the figure as a table (name, scheme) and benchmarks
instantiation, which the (Var)/(Op)/(Const) rules perform at every leaf
of every derivation.
"""

from __future__ import annotations

from repro.core.constraints import is_satisfiable, render_constraint
from repro.core.initial_env import PRIMITIVE_SCHEMES
from repro.core.schemes import instantiate
from repro.core.types import _variable_display_names, render_type

from _util import write_table

#: Figure 6's entries, in the paper's order, with the expected rendering.
FIGURE6_EXPECTED = {
    "fix": ("('a -> 'a) -> 'a", "True"),
    "fst": ("'a * 'b -> 'a", "L('a) => L('b)"),
    "snd": ("'a * 'b -> 'b", "L('b) => L('a)"),
    "+": ("int * int -> int", "True"),
    "nc": ("unit -> 'a", "True"),
    "isnc": ("'a -> bool", "L('a)"),
    "mkpar": ("(int -> 'a) -> 'a par", "L('a)"),
    "apply": ("('a -> 'b) par * 'a par -> 'b par", "L('a) /\\ L('b)"),
    "put": ("(int -> 'a) par -> (int -> 'a) par", "L('a)"),
}


def _render(name):
    scheme = PRIMITIVE_SCHEMES[name]
    names = _variable_display_names(scheme.body.type)
    ty = render_type(scheme.body.type, names)
    constraint = render_constraint(scheme.body.constraint, names)
    return ty, constraint


def test_figure6_table(benchmark):
    rows = []
    for name in FIGURE6_EXPECTED:
        ty, constraint = _render(name)
        expected_ty, expected_constraint = FIGURE6_EXPECTED[name]
        assert ty == expected_ty, name
        assert constraint == expected_constraint, name
        rows.append((name, ty, constraint))
    for name in sorted(set(PRIMITIVE_SCHEMES) - set(FIGURE6_EXPECTED)):
        ty, constraint = _render(name)
        rows.append((name, ty, constraint))
    write_table(
        "fig6_initial_env",
        "Figure 6 — the initial environment TC (paper rows first, then the "
        "remaining operators)",
        ("op", "type", "constraint"),
        rows,
    )
    benchmark(lambda: instantiate(PRIMITIVE_SCHEMES["apply"]))


def test_every_instantiation_is_satisfiable(benchmark):
    def instantiate_all():
        for scheme in PRIMITIVE_SCHEMES.values():
            ct = instantiate(scheme)
            assert is_satisfiable(ct.constraint)

    benchmark(instantiate_all)
