"""Benchmark — the tracing layer's disabled overhead.

The structured tracer (``repro.obs``) follows the perf layer's opt-in
discipline: with no collector active every instrumentation point is one
truthiness test on a module-level stack.  The guard below holds the
machine to that promise: a superstep workload run with tracing disabled
must cost at most ``MAX_OVERHEAD`` of the same workload with the
instrumentation sites **stubbed out entirely** — a faithful stand-in for
the machine as it was before the layer existed (that code is gone, so it
cannot be measured directly).

A third, informational measurement runs with a collector active.  That
path deliberately pays for record construction (it is opt-in precisely
because it is not free), so it is reported but not guarded.

The regenerated table lands in ``benchmarks/results/trace.txt``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from functools import partial

from repro import obs
from repro.bsp import executor as executor_mod
from repro.bsp import machine as machine_mod
from repro.bsp.machine import BspMachine
from repro.bsp.params import BspParams

from _util import write_table

PARAMS = BspParams(p=4, g=2.0, l=50.0)

#: Supersteps (each: one compute phase + one exchange) per measurement.
REPS = 300

#: Best-of-N wall-clock measurements (minimum filters scheduler noise).
REPEATS = 7

#: The guard: tracing disabled must cost at most this factor of the
#: machine with the instrumentation sites removed.
MAX_OVERHEAD = 1.05


def _unit_task(i):
    return i * i, 1.0


TASKS = [partial(_unit_task, i) for i in range(PARAMS.p)]
SENT = [[0, 1, 0, 0], [0, 0, 1, 0], [0, 0, 0, 1], [1, 0, 0, 0]]
PAYLOADS = {(0, 1): "a", (1, 2): "b", (2, 3): "c", (3, 0): "d"}


class _ObsStub:
    """The tracer's surface with every site compiled down to nothing —
    the machine as it was before the layer existed."""

    MACHINE_TRACK = obs.MACHINE_TRACK
    INFERENCE_TRACK = obs.INFERENCE_TRACK

    @staticmethod
    def process_track(proc):
        return f"proc {proc}"

    @staticmethod
    def is_tracing():
        return False

    @staticmethod
    def record(*args, **kwargs):
        pass

    @staticmethod
    def event(*args, **kwargs):
        pass

    @staticmethod
    @contextmanager
    def span(*args, **kwargs):
        yield None


@contextmanager
def _instrumentation_removed():
    """Swap the machine/executor layers' ``obs`` binding for the stub."""
    originals = (machine_mod.obs, executor_mod.obs)
    machine_mod.obs = executor_mod.obs = _ObsStub
    try:
        yield
    finally:
        machine_mod.obs, executor_mod.obs = originals


def _drive(machine: BspMachine):
    values = None
    for _ in range(REPS):
        values = machine.run_superstep(TASKS)
        machine.exchange(SENT, payloads=dict(PAYLOADS), label="bench")
    return values


def _measure_once() -> float:
    machine = BspMachine(PARAMS)
    start = time.perf_counter()
    _drive(machine)
    return time.perf_counter() - start


def _best_of(mode: str) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        if mode == "stubbed":
            with _instrumentation_removed():
                best = min(best, _measure_once())
        elif mode == "disabled":
            best = min(best, _measure_once())
        else:  # enabled
            with obs.trace():
                best = min(best, _measure_once())
    return best


def test_disabled_tracing_is_free(benchmark):
    # Correctness first: neither the stub nor an active collector changes
    # anything observable.
    with _instrumentation_removed():
        stub_machine = BspMachine(PARAMS)
        stub_values = _drive(stub_machine)
    plain_machine = BspMachine(PARAMS)
    plain_values = _drive(plain_machine)
    traced_machine = BspMachine(PARAMS)
    with obs.trace() as collected:
        traced_values = _drive(traced_machine)
    assert stub_values == plain_values == traced_values == [0, 1, 4, 9]
    assert stub_machine.cost() == plain_machine.cost() == traced_machine.cost()
    # and the traced run actually recorded the pipeline
    assert len(collected.events("superstep")) == REPS

    stubbed_s = _best_of("stubbed")
    disabled_s = _best_of("disabled")
    enabled_s = _best_of("enabled")
    ratio = disabled_s / stubbed_s
    enabled_ratio = enabled_s / stubbed_s

    write_table(
        "trace",
        f"Tracing overhead — {REPS} supersteps (compute + exchange), "
        f"p={PARAMS.p}, best of {REPEATS}",
        ("machine", "total (ms)", "vs no layer", "verdict"),
        [
            (
                "instrumentation stubbed out",
                f"{stubbed_s * 1e3:.1f}",
                "1.00x",
                "reference",
            ),
            (
                "tracing disabled (no collector)",
                f"{disabled_s * 1e3:.1f}",
                f"{ratio:.2f}x",
                "within guard" if ratio <= MAX_OVERHEAD else "OVER BUDGET",
            ),
            (
                "collector active (full trace)",
                f"{enabled_s * 1e3:.1f}",
                f"{enabled_ratio:.2f}x",
                "informational",
            ),
        ],
        footer="Guard: with no collector active the instrumentation must "
        f"cost <= {MAX_OVERHEAD:.2f}x the machine with the sites removed "
        "entirely (one truthiness test per site).  An active collector "
        "pays for record construction by design and is opt-in.",
    )

    assert ratio <= MAX_OVERHEAD, (
        f"disabled-tracing overhead {ratio:.3f}x exceeds the "
        f"{MAX_OVERHEAD:.2f}x budget ({disabled_s * 1e3:.2f} ms vs "
        f"{stubbed_s * 1e3:.2f} ms over {REPS} supersteps)"
    )

    benchmark(lambda: _drive(BspMachine(PARAMS)))
