"""Guard — service latency, measured with the repro.obs span histograms.

Boots the typecheck-and-run service in-process, drives it over real HTTP
(loopback), and records one ``service.<scenario>`` span per request
inside an :func:`repro.obs.trace` window; the p50/p95/p99/max latencies come
out of :func:`repro.obs.histograms`, exactly the machinery a production
operator would point at the service's own traces.

Scenarios:

* ``typecheck``  — POST /v1/typecheck, distinct programs (no caching);
* ``typecheck_w`` / ``typecheck_uf`` — POST /v1/typecheck with
  ``infer_engine`` pinned, distinct *inference-heavy* programs (deep
  let chains), every request cold: the union-find engine's speedup
  measured end-to-end through the HTTP stack (typecheck digests
  include the engine, so the engines never share a cache entry);
* ``run_cold``   — POST /v1/run, distinct programs: parse + infer +
  evaluate + cost on every request;
* ``run_cached`` — POST /v1/run, one program repeated: after the first
  request every answer is a digest-keyed cache replay.

Soft assertions only sanity-check the shape (everything answered 200,
cache replays not slower than cold runs at the median, generous absolute
ceiling); the numbers themselves land in
``benchmarks/results/service_latency.txt``.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

from repro import obs
from repro.service import ServiceConfig, ServiceCore, start_in_background

from _util import write_table

REQUESTS_PER_SCENARIO = 60
ENGINE_REQUESTS = 25
ENGINE_PROGRAM_LETS = 60
THROUGHPUT_THREADS = 8
THROUGHPUT_REQUESTS = 120

RUN_PROGRAM = "bcast 2 (mkpar (fun i -> i * i))"


def _request(port: int, path: str, payload: dict) -> int:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request("POST", path, body=json.dumps(payload))
        response = conn.getresponse()
        response.read()
        return response.status
    finally:
        conn.close()


def _distinct_program(i: int) -> str:
    return f"let base = {i} in bcast 2 (mkpar (fun i -> i * base))"


def _inference_heavy_program(i: int) -> str:
    """A deep let chain (one generalization per binder) with ``i`` baked
    in so every request is a fresh digest — inference dominates, which
    is what separates the engines."""
    lines = [f"let x0 = {i} in"]
    lines.extend(
        f"let x{j} = x{j-1} + {j} in" for j in range(1, ENGINE_PROGRAM_LETS)
    )
    lines.append(f"x{ENGINE_PROGRAM_LETS - 1}")
    return "\n".join(lines)


def test_service_latency_guard():
    handle = start_in_background(
        ServiceCore(ServiceConfig(cache_capacity=4096)),
        max_concurrency=THROUGHPUT_THREADS,
        max_queue=256,
    )
    try:
        port = handle.port
        # Warm the pipeline (imports, prelude env, solver caches).
        assert _request(port, "/v1/run", {"program": RUN_PROGRAM, "p": 4}) == 200

        statuses = []
        with obs.trace() as window:
            for i in range(REQUESTS_PER_SCENARIO):
                with obs.span("service.typecheck", "service"):
                    statuses.append(
                        _request(
                            port, "/v1/typecheck", {"program": _distinct_program(i)}
                        )
                    )
            for engine in ("w", "uf"):
                for i in range(ENGINE_REQUESTS):
                    with obs.span(f"service.typecheck_{engine}", "service"):
                        statuses.append(
                            _request(
                                port,
                                "/v1/typecheck",
                                {
                                    "program": _inference_heavy_program(i),
                                    "infer_engine": engine,
                                },
                            )
                        )
            for i in range(REQUESTS_PER_SCENARIO):
                with obs.span("service.run_cold", "service"):
                    statuses.append(
                        _request(
                            port,
                            "/v1/run",
                            {"program": _distinct_program(i + 10_000), "p": 4},
                        )
                    )
            for _ in range(REQUESTS_PER_SCENARIO):
                with obs.span("service.run_cached", "service"):
                    statuses.append(
                        _request(port, "/v1/run", {"program": RUN_PROGRAM, "p": 4})
                    )
        assert all(status == 200 for status in statuses)

        histograms = {h.name: h for h in obs.histograms(window)}
        rows = []
        for scenario in (
            "service.typecheck",
            "service.typecheck_w",
            "service.typecheck_uf",
            "service.run_cold",
            "service.run_cached",
        ):
            hist = histograms[scenario]
            rows.append(
                [
                    scenario.removeprefix("service."),
                    hist.count,
                    f"{hist.p50 * 1e3:.2f}",
                    f"{hist.p95 * 1e3:.2f}",
                    f"{hist.p99 * 1e3:.2f}",
                    f"{hist.max * 1e3:.2f}",
                ]
            )

        # Throughput: a saturating burst from 8 client threads.
        errors = []
        barrier = threading.Barrier(THROUGHPUT_THREADS + 1)

        def fire(worker: int) -> None:
            barrier.wait(timeout=30)
            for i in range(THROUGHPUT_REQUESTS // THROUGHPUT_THREADS):
                status = _request(port, "/v1/run", {"program": RUN_PROGRAM, "p": 4})
                if status != 200:
                    errors.append(status)

        pool = [
            threading.Thread(target=fire, args=(t,))
            for t in range(THROUGHPUT_THREADS)
        ]
        for thread in pool:
            thread.start()
        barrier.wait(timeout=30)
        started = time.perf_counter()
        for thread in pool:
            thread.join(timeout=300)
        elapsed = time.perf_counter() - started
        assert not errors
        rps = THROUGHPUT_REQUESTS / elapsed
        stats = handle.server.stats()

        write_table(
            "service_latency",
            "Service latency over loopback HTTP (ms), from repro.obs span "
            "histograms",
            ["scenario", "count", "p50", "p95", "p99", "max"],
            rows,
            footer=(
                f"throughput: {THROUGHPUT_REQUESTS} cached requests from "
                f"{THROUGHPUT_THREADS} threads in {elapsed:.2f}s = {rps:.0f} req/s; "
                f"peak_inflight={stats['server']['peak_inflight']}, "
                f"response cache: {stats['response_cache']['hits']} hits / "
                f"{stats['response_cache']['misses']} misses"
            ),
        )

        cold = histograms["service.run_cold"]
        cached = histograms["service.run_cached"]
        w_cold = histograms["service.typecheck_w"]
        uf_cold = histograms["service.typecheck_uf"]
        # The union-find engine must not be slower than the substitution
        # engine on cold inference-heavy typechecks (it is several times
        # faster; the strict speedup floor lives in bench_infer_engines).
        assert uf_cold.p50 <= w_cold.p50, (uf_cold.p50, w_cold.p50)
        # Soft shape guards (the CI job running this is advisory):
        # replays skip parse/infer/evaluate, so the median must not be
        # slower than cold runs, and loopback replays are fast in any
        # reasonable environment.
        assert cached.p50 <= cold.p50 * 1.5, (cached.p50, cold.p50)
        assert cached.p95 < 0.5, f"cached p95 {cached.p95 * 1e3:.1f}ms"
        assert rps > 20, f"throughput {rps:.0f} req/s"
    finally:
        handle.stop()
