"""Inference-engine scaling guard: union-find vs substitution engine.

The substitution engine (``engine="w"``) is a literal transcription of
the paper's Fig. 7 rules: every unification returns a substitution that
is composed into an accumulator and eagerly applied to the environment,
so inference over a program with ``n`` binders costs ``O(n)`` full
environment rewrites — quadratic overall.  The union-find engine
(``engine="uf"``) keeps mutable representatives outside the hash-consed
type layer, unifies in place with path compression, and generalizes by
Remy-style levels, so the same judgments come out near-linear.

Both engines produce bit-identical types, constraints, derivations and
errors (see tests/core/test_infer_engines.py); this module guards the *point*
of the second engine — the speedup — and records the scaling curve:

* ``SPEEDUP_FLOOR``: at every AST-size bucket >= ``SPEEDUP_AT_SIZE``
  the union-find engine must be at least 5x faster than the
  substitution engine on the same programs.

Run with the tier-1 guard::

    python -m pytest benchmarks/bench_infer_engines.py -q --benchmark-disable
"""

from __future__ import annotations

import time

from repro.core.infer import infer
from repro.core.prelude_env import prelude_env
from repro.lang.parser import parse_expression as parse

from _util import write_table

SIZES = (30, 100, 250, 500, 1000, 2000)
SPEEDUP_FLOOR = 5.0
SPEEDUP_AT_SIZE = 500


def _deep_let_program(n: int) -> str:
    """``n`` nested monomorphic lets — one generalization per binder."""
    lines = [f"let x{i} = x{i-1} + {i} in" if i else "let x0 = 1 in" for i in range(n)]
    lines.append(f"x{n-1}")
    return "\n".join(lines)


def _poly_chain_program(n: int) -> str:
    """``n`` nested *polymorphic* lets, each instantiating the previous.

    Stresses the part the substitution engine is worst at: every binder
    generalizes against the full environment, and every use re-applies
    the accumulated substitution to an instantiated scheme.
    """
    lines = ["let f0 = fun x -> x in"]
    lines.extend(f"let f{i} = fun x -> f{i-1} x in" for i in range(1, n))
    lines.append(f"f{n-1} 1")
    return "\n".join(lines)


def _programs_by_size(sizes=SIZES):
    """One deep-let and one poly-chain program per target AST size.

    The deep-let shape has ~6 AST nodes per binder and the poly chain
    ~5, so the binder counts are derived, then the real ``expr.size()``
    is asserted to land inside the bucket — deterministically, no
    scanning or retries.
    """
    buckets = {}
    for target in sizes:
        deep = parse(_deep_let_program(max(2, target // 6)))
        poly = parse(_poly_chain_program(max(2, target // 5)))
        for expr in (deep, poly):
            assert 0.5 * target <= expr.size() <= 1.5 * target, (
                f"synthetic program missed its size bucket: "
                f"target {target}, actual {expr.size()}"
            )
        buckets[target] = (deep, poly)
    return buckets


def _time_engine(programs, engine: str) -> float:
    start = time.perf_counter()
    for program in programs:
        infer(program, engine=engine)
    return time.perf_counter() - start


def test_union_find_speedup_guard(benchmark):
    buckets = _programs_by_size()
    rows = []
    ratios = {}
    for target, programs in sorted(buckets.items()):
        w_seconds = _time_engine(programs, "w")
        uf_seconds = _time_engine(programs, "uf")
        ratio = w_seconds / uf_seconds
        ratios[target] = ratio
        rows.append(
            (
                target,
                f"{sum(p.size() for p in programs) / len(programs):.0f}",
                f"{w_seconds * 1e3:.2f}",
                f"{uf_seconds * 1e3:.2f}",
                f"{ratio:.1f}x",
            )
        )
    write_table(
        "infer_engines",
        "Inference engines: substitution (w) vs union-find (uf), same programs",
        ("size bucket", "mean AST nodes", "w ms", "uf ms", "speedup"),
        rows,
        footer=(
            f"guard: uf >= {SPEEDUP_FLOOR:.0f}x at size >= {SPEEDUP_AT_SIZE} "
            "(types/constraints/derivations/errors bit-identical, see "
            "tests/core/test_infer_engines.py)"
        ),
    )
    for target, ratio in ratios.items():
        if target >= SPEEDUP_AT_SIZE:
            assert ratio >= SPEEDUP_FLOOR, (
                f"union-find engine regressed: only {ratio:.1f}x over the "
                f"substitution engine at size {target} "
                f"(floor {SPEEDUP_FLOOR:.0f}x)"
            )
    sample = buckets[500][0]
    benchmark(lambda: infer(sample, engine="uf"))


def test_engines_agree_on_prelude_program(benchmark):
    """Spot conformance inside the bench module itself: a realistic
    parallel program against the prelude types identically (the full
    corpus sweep lives in tests/core/test_infer_engines.py)."""
    env = prelude_env()
    source = """
        let sumpair = fun ab -> fst ab + snd ab in
        let sums = scan sumpair (mkpar (fun i -> i + 1)) in
        let top = bcast (nproc - 1) sums in
        apply (mkpar (fun i -> fun t -> t - i), top)
    """
    expr = parse(source)
    w_ct = infer(expr, env, engine="w")
    uf_ct = infer(expr, env, engine="uf")
    assert w_ct.type is uf_ct.type
    assert w_ct.constraint is uf_ct.constraint
    benchmark(lambda: infer(expr, env, engine="uf"))
