"""Ablation — the two dynamic semantics engines.

The small-step machine is the faithful reference (it *is* Figures 1/2/5);
the big-step evaluator is the production engine.  This bench checks they
agree on a corpus and measures the gap, plus how evaluation scales with
the machine size p (put is Theta(p^2) messages).
"""

from __future__ import annotations

import time

import pytest

from repro.lang.parser import parse_program
from repro.lang.prelude import with_prelude
from repro.lang.substitution import alpha_equal
from repro.semantics.bigstep import run
from repro.semantics.smallstep import evaluate, step_count
from repro.semantics.values import reify
from repro.testing.generators import well_typed_corpus

from _util import write_table

PROGRAMS = {
    "factorial 8": "(fix (fun f -> fun n -> if n = 0 then 1 else n * f (n - 1))) 8",
    "bcast p=8": "bcast 0 (mkpar (fun i -> i))",
    "scan p=8": "scan (fun ab -> fst ab + snd ab) (mkpar (fun i -> i))",
    "fold p=8": "fold (fun ab -> fst ab + snd ab) (mkpar (fun i -> i))",
}


def test_engines_agree_and_compare(benchmark):
    rows = []
    for name, source in PROGRAMS.items():
        expr = with_prelude(parse_program(source))
        start = time.perf_counter()
        small = evaluate(expr, 8)
        small_ms = (time.perf_counter() - start) * 1e3
        start = time.perf_counter()
        big = run(expr, 8)
        big_ms = (time.perf_counter() - start) * 1e3
        assert alpha_equal(small, reify(big)), name
        steps = step_count(expr, 8)
        rows.append(
            (name, steps, f"{small_ms:.2f}", f"{big_ms:.3f}",
             f"{small_ms / max(big_ms, 1e-9):.0f}x")
        )
    write_table(
        "evaluator_comparison",
        "Small-step (faithful) vs big-step (fast) evaluator, p = 8",
        ("program", "steps", "small-step ms", "big-step ms", "speedup"),
        rows,
        footer="Values agree (alpha-equivalence) on every program; the "
        "test suite checks this over the whole corpus and 60 random "
        "programs as well.",
    )
    expr = with_prelude(parse_program(PROGRAMS["scan p=8"]))
    benchmark(lambda: run(expr, 8))


@pytest.mark.parametrize("p", [2, 4, 8, 16, 32])
def test_bigstep_scales_with_p(benchmark, p):
    expr = with_prelude(parse_program("fold (fun ab -> fst ab + snd ab) (mkpar (fun i -> i))"))
    value = benchmark(lambda: run(expr, p))
    from repro.semantics.values import to_python

    assert to_python(value)[0] == p * (p - 1) // 2


def test_corpus_agreement(benchmark):
    exprs = [with_prelude(parse_program(s)) for s in well_typed_corpus()]

    def check_all():
        for expr in exprs:
            assert alpha_equal(evaluate(expr, 2), reify(run(expr, 2)))

    benchmark.pedantic(check_all, rounds=1, iterations=1)
