"""Ablation — the dynamic semantics engines.

The small-step machine is the faithful reference (it *is* Figures 1/2/5);
the big-step tree evaluator is the readable production engine; the
closure-compiling engine (:mod:`repro.semantics.compiled`) is the fast
scalar one; the SPMD-vectorized engine
(:mod:`repro.semantics.vectorized`) batches the compiled closures over
all p pids per superstep.  This bench checks they agree on a corpus,
measures the gaps, and **guards** two contracts: compiled must be >= 2x
faster than tree on the warm scaling suite, and vectorized must be
>= 2x faster than compiled in aggregate on the wide machines (p >= 16)
of the costed scaling suite — both with bit-identical BspCost tables
and abstract trace signatures.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.bsp.machine import BspMachine
from repro.bsp.params import BspParams
from repro.lang.parser import parse_program
from repro.lang.prelude import with_prelude
from repro.lang.substitution import alpha_equal
from repro.semantics.bigstep import Evaluator, run
from repro.semantics.compiled import compile_program
from repro.semantics.costed import run_costed
from repro.semantics.smallstep import evaluate, step_count
from repro.semantics.values import reify
from repro.semantics.vectorized import compile_vectorized
from repro.testing.generators import well_typed_corpus

from _util import write_table

PROGRAMS = {
    "factorial 8": "(fix (fun f -> fun n -> if n = 0 then 1 else n * f (n - 1))) 8",
    "bcast p=8": "bcast 0 (mkpar (fun i -> i))",
    "scan p=8": "scan (fun ab -> fst ab + snd ab) (mkpar (fun i -> i))",
    "fold p=8": "fold (fun ab -> fst ab + snd ab) (mkpar (fun i -> i))",
}

#: The scaling suite (fold is Theta(p) supersteps of Theta(p) work, put
#: in scan is Theta(p^2) messages) — also what the compiled-engine
#: speedup guard runs on.
SCALING_PROGRAM = "fold (fun ab -> fst ab + snd ab) (mkpar (fun i -> i))"
SCALING_WIDTHS = (2, 4, 8, 16, 32)


def _warm_ms(fn, budget_s=0.25):
    """Average per-call milliseconds of ``fn`` over a fixed time budget
    (one untimed warm-up call first)."""
    fn()
    start = time.perf_counter()
    calls = 0
    while time.perf_counter() - start < budget_s:
        fn()
        calls += 1
    return (time.perf_counter() - start) / calls * 1e3


def _warm_cpu_ms(fn, budget_s=0.4):
    """Average per-call CPU milliseconds over a fixed budget (one
    untimed warm-up call first).  CPU time, not wall clock: engine-vs-
    engine guards must hold on noisy shared CI boxes where wall-clock
    swings with scheduler steal."""
    fn()
    start = time.process_time()
    calls = 0
    while time.process_time() - start < budget_s:
        fn()
        calls += 1
    return (time.process_time() - start) / calls * 1e3


def test_engines_agree_and_compare(benchmark):
    rows = []
    for name, source in PROGRAMS.items():
        expr = with_prelude(parse_program(source))
        start = time.perf_counter()
        small = evaluate(expr, 8)
        small_ms = (time.perf_counter() - start) * 1e3
        start = time.perf_counter()
        big = run(expr, 8)
        big_ms = (time.perf_counter() - start) * 1e3
        assert alpha_equal(small, reify(big)), name
        compiled_program = compile_program(expr, 8)
        start = time.perf_counter()
        compiled = compiled_program.run()
        compiled_ms = (time.perf_counter() - start) * 1e3
        assert alpha_equal(small, reify(compiled)), name
        steps = step_count(expr, 8)
        rows.append(
            (name, steps, f"{small_ms:.2f}", f"{big_ms:.3f}",
             f"{compiled_ms:.3f}",
             f"{small_ms / max(big_ms, 1e-9):.0f}x",
             f"{big_ms / max(compiled_ms, 1e-9):.1f}x")
        )
    write_table(
        "evaluator_comparison",
        "Small-step (faithful) vs big-step (tree) vs compiled evaluator, p = 8",
        ("program", "steps", "small-step ms", "tree ms", "compiled ms",
         "tree vs small", "compiled vs tree"),
        rows,
        footer="Values agree (alpha-equivalence) on every program; the "
        "test suite checks this over the whole corpus and hundreds of "
        "random programs, with bit-identical BspCost tables and trace "
        "signatures between tree and compiled (see "
        "tests/properties/test_engine_conformance.py).  Compiled timings "
        "are single cold runs after one compile; the warm >= 2x guard is "
        "the evaluator_compiled_guard table.",
    )
    expr = with_prelude(parse_program(PROGRAMS["scan p=8"]))
    benchmark(lambda: run(expr, 8))


def test_compiled_speedup_guard():
    """The compiled engine's contract, enforced in CI: on the warm
    scaling suite it is >= 2x faster than the tree evaluator in
    aggregate, while BspCost tables and abstract trace signatures stay
    bit-identical at every machine size."""
    expr = with_prelude(parse_program(SCALING_PROGRAM))
    rows = []
    tree_total = 0.0
    compiled_total = 0.0
    for p in SCALING_WIDTHS:
        # Conformance first: costed machines + traces, both engines.
        observations = []
        for engine in ("tree", "compiled"):
            with obs.trace() as collected:
                result = run_costed(
                    expr, BspParams(p=p), use_prelude=False, engine=engine
                )
            observations.append(
                (result.python_value, result.cost, collected.abstract_signature())
            )
        (tree_value, tree_cost, tree_sig) = observations[0]
        (compiled_value, compiled_cost, compiled_sig) = observations[1]
        assert compiled_value == tree_value, f"p={p}: values diverge"
        assert compiled_cost == tree_cost, f"p={p}: BspCost diverges"
        assert compiled_sig == tree_sig, f"p={p}: trace signature diverges"
        # Warm timings: the tree engine re-walks the AST per run, the
        # compiled engine compiles once and reruns the closure tree.
        evaluator = Evaluator(p)
        tree_ms = _warm_ms(lambda: evaluator.eval(expr))
        program = compile_program(expr, p)
        compiled_ms = _warm_ms(program.run)
        tree_total += tree_ms
        compiled_total += compiled_ms
        rows.append(
            (f"p={p}", f"{tree_ms:.3f}", f"{compiled_ms:.3f}",
             f"{tree_ms / compiled_ms:.2f}x", "yes")
        )
    speedup = tree_total / compiled_total
    rows.append(
        ("total", f"{tree_total:.3f}", f"{compiled_total:.3f}",
         f"{speedup:.2f}x", "yes")
    )
    write_table(
        "evaluator_compiled_guard",
        "Compiled-engine speedup guard: warm fold scaling suite "
        "(compile once, run many)",
        ("machine", "tree ms", "compiled ms", "speedup", "cost+trace identical"),
        rows,
        footer="CI guard: aggregate speedup must stay >= 2x with "
        "bit-identical BspCost tables and abstract trace signatures at "
        "every p.",
    )
    assert speedup >= 2.0, (
        f"compiled engine regressed: {speedup:.2f}x < 2x on the warm "
        "scaling suite"
    )


def test_vectorized_speedup_guard():
    """The vectorized engine's contract, enforced in CI: batching the
    per-pid closure executions must pay off where SPMD batching matters
    — >= 2x faster than the compiled engine in aggregate over the wide
    machines (p >= 16) of the *costed* fold scaling suite — while
    BspCost tables and abstract trace signatures stay bit-identical at
    every p.  Narrow machines are reported but unguarded: at p = 2 the
    vector bookkeeping has nothing to amortize over."""
    expr = with_prelude(parse_program(SCALING_PROGRAM))
    rows = []
    wide_compiled = 0.0
    wide_vectorized = 0.0
    for p in SCALING_WIDTHS:
        params = BspParams(p=p)
        # Conformance first: costed machines + traces, both engines.
        observations = []
        for engine in ("compiled", "vectorized"):
            with obs.trace() as collected:
                result = run_costed(
                    expr, params, use_prelude=False, engine=engine
                )
            observations.append(
                (result.python_value, result.cost, collected.abstract_signature())
            )
        (compiled_value, compiled_cost, compiled_sig) = observations[0]
        (vector_value, vector_cost, vector_sig) = observations[1]
        assert vector_value == compiled_value, f"p={p}: values diverge"
        assert vector_cost == compiled_cost, f"p={p}: BspCost diverges"
        assert vector_sig == compiled_sig, f"p={p}: trace signature diverges"
        # Warm timings over *costed* runs, fresh machine per run for
        # both engines: batching only engages when a machine is
        # attached (uncosted evaluation has no supersteps to batch).
        compiled_program = compile_program(expr, p)
        vector_program = compile_vectorized(expr, p)
        compiled_ms = _warm_cpu_ms(
            lambda: compiled_program.run(BspMachine(params))
        )
        vector_ms = _warm_cpu_ms(lambda: vector_program.run(BspMachine(params)))
        if p >= 16:
            wide_compiled += compiled_ms
            wide_vectorized += vector_ms
        rows.append(
            (f"p={p}", f"{compiled_ms:.3f}", f"{vector_ms:.3f}",
             f"{compiled_ms / vector_ms:.2f}x", "yes")
        )
    speedup = wide_compiled / wide_vectorized
    rows.append(
        ("p>=16 total", f"{wide_compiled:.3f}", f"{wide_vectorized:.3f}",
         f"{speedup:.2f}x", "yes")
    )
    write_table(
        "evaluator_vectorized_guard",
        "Vectorized-engine speedup guard: warm costed fold scaling suite "
        "(compile once, fresh machine per run)",
        ("machine", "compiled ms", "vectorized ms", "speedup",
         "cost+trace identical"),
        rows,
        footer="CI guard: aggregate CPU-time speedup over p in {16, 32} "
        "must stay >= 2x with bit-identical BspCost tables and abstract "
        "trace signatures at every p.",
    )
    assert speedup >= 2.0, (
        f"vectorized engine regressed: {speedup:.2f}x < 2x over compiled "
        "in aggregate at p >= 16 on the costed scaling suite"
    )


@pytest.mark.parametrize("p", [2, 4, 8, 16, 32])
def test_bigstep_scales_with_p(benchmark, p):
    expr = with_prelude(parse_program(SCALING_PROGRAM))
    value = benchmark(lambda: run(expr, p))
    from repro.semantics.values import to_python

    assert to_python(value)[0] == p * (p - 1) // 2


@pytest.mark.parametrize("p", [2, 4, 8, 16, 32])
def test_compiled_scales_with_p(benchmark, p):
    expr = with_prelude(parse_program(SCALING_PROGRAM))
    program = compile_program(expr, p)
    value = benchmark(program.run)
    from repro.semantics.values import to_python

    assert to_python(value)[0] == p * (p - 1) // 2


@pytest.mark.parametrize("p", [2, 4, 8, 16, 32])
def test_vectorized_scales_with_p(benchmark, p):
    expr = with_prelude(parse_program(SCALING_PROGRAM))
    program = compile_vectorized(expr, p)
    params = BspParams(p=p)
    value = benchmark(lambda: program.run(BspMachine(params)))
    from repro.semantics.values import to_python

    assert to_python(value)[0] == p * (p - 1) // 2


def test_corpus_agreement(benchmark):
    exprs = [with_prelude(parse_program(s)) for s in well_typed_corpus()]

    def check_all():
        for expr in exprs:
            assert alpha_equal(evaluate(expr, 2), reify(run(expr, 2)))
            assert alpha_equal(
                evaluate(expr, 2), reify(compile_program(expr, 2).run())
            )

    benchmark.pedantic(check_all, rounds=1, iterations=1)
