"""Benchmark — the execution backends against the sequential reference.

The executor layer claims two things:

1. **Observational equality.**  Values and abstract BSP costs are
   backend-independent — the whole point of keeping the `W + H.g + S.l`
   accounting inside the tasks.  This bench re-asserts it on a mixed
   workload (generated programs plus every shipped ``programs/*.bsml``),
   so ``pytest benchmarks/`` catches a divergent backend even if the
   tier-1 property sweep is skipped.

2. **Bounded dispatch overhead.**  On a one-superstep microworkload the
   thread backend's dispatch overhead (pool submission + join versus a
   plain loop) must stay within an order of magnitude of sequential —
   the interpreter work dominates dispatch for any real program.  No
   *speedup* is asserted: the GIL and single-core CI boxes make one
   meaningless, and the layer exists for fidelity to the BSP machine
   model, not for making an interpreter faster.

The regenerated table lands in ``benchmarks/results/backends.txt``.
"""

from __future__ import annotations

import time

from repro.bsp.executor import BACKENDS
from repro.bsp.params import BspParams
from repro.testing import ProgramGenerator, conformance_corpus, run_differential

from _util import write_table

PARAMS = BspParams(p=4, g=2.0, l=50.0)

#: Generated-program seeds swept (on top of the shipped corpus).
SEEDS = range(40)


def _workload():
    for seed in SEEDS:
        expr = ProgramGenerator(seed=seed, p_hint=PARAMS.p).expression(depth=4)
        yield f"gen[{seed}]", expr, False
    for name, source in conformance_corpus():
        yield name, source, True


def test_backends_agree_and_overhead_is_bounded(benchmark):
    timings = {backend: 0.0 for backend in BACKENDS}
    programs = 0
    divergent = []
    for name, program, prelude in _workload():
        programs += 1
        report = run_differential(program, params=PARAMS, use_prelude=prelude)
        if not report.conforms:
            divergent.append((name, report.explain()))
            continue
        # Re-run each backend alone for a per-backend timing that is not
        # polluted by the other backends sharing the loop iteration.
        for backend in BACKENDS:
            start = time.perf_counter()
            run_differential(
                program, params=PARAMS, backends=(backend,), use_prelude=prelude
            )
            timings[backend] += time.perf_counter() - start

    assert not divergent, "backends diverged:\n" + "\n\n".join(
        explanation for _, explanation in divergent
    )

    sequential = timings["seq"]
    rows = [
        (
            backend,
            f"{timings[backend] * 1e3:.1f}",
            f"{timings[backend] / sequential:.2f}x",
            "reference" if backend == "seq" else "conforms",
        )
        for backend in BACKENDS
    ]
    write_table(
        "backends",
        f"Backends — {programs} programs (generated + shipped corpus), "
        f"p={PARAMS.p}: wall clock per backend, all values and costs "
        "bit-identical",
        ("backend", "total (ms)", "vs seq", "verdict"),
        rows,
        footer="Abstract cost is computed inside the tasks, so the "
        "BspCost tables agree exactly; only wall clock differs.",
    )

    # Dispatch overhead guard, on the cheapest possible per-task work:
    # thread dispatch must stay within 10x of the in-line loop.  The
    # process backend is exempt — crossing a process boundary per task
    # costs real IPC and is priced as such in EXPERIMENTS.md.
    assert timings["thread"] < 10 * sequential, (
        f"thread dispatch overhead blew up: {timings['thread'] * 1e3:.1f} ms "
        f"vs sequential {sequential * 1e3:.1f} ms"
    )

    sample = ProgramGenerator(seed=3, p_hint=PARAMS.p).expression(depth=4)
    benchmark(
        lambda: run_differential(
            sample, params=PARAMS, backends=("seq",), use_prelude=False
        )
    )
