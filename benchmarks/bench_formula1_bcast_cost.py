"""E8 — Formula (1): cost of ``bcast n vec`` = ``p + (p-1)*s*g + l``.

Sweeps machine sizes and message sizes on both implementations of the
algorithm (the mini-BSML prelude ``bcast`` run by the costed interpreter,
and the Python BSMLlib ``bcast_direct``), and checks:

* the H term is exactly ``(p-1) * s`` and S is exactly 1 (both engines);
* the measured total matches the closed form exactly for the Python
  library (whose work unit is 1 op per primitive component action), and
  up to the interpreter's constant factor on the O(p) local term for
  mini-BSML.
"""

from __future__ import annotations

import pytest

from repro.bsp.params import BspParams
from repro.bsml.predictions import cost_bcast_direct
from repro.bsml.primitives import Bsml
from repro.bsml.stdlib import bcast_direct
from repro.semantics.costed import run_source

from _util import write_table

P_SWEEP = (2, 4, 8, 16, 32)
S_SWEEP = (1, 2, 4)
G, L = 2.0, 100.0

_PAYLOADS = {1: "i", 2: "(i, i)", 4: "((i, i), (i, i))"}


def test_formula1_mini_bsml(benchmark):
    rows = []
    for p in P_SWEEP:
        for s in S_SWEEP:
            params = BspParams(p=p, g=G, l=L)
            source = f"bcast 0 (mkpar (fun i -> {_PAYLOADS[s]}))"
            result = run_source(source, params)
            assert result.cost.H == (p - 1) * s, (p, s)
            assert result.cost.S == 1, (p, s)
            formula = p + (p - 1) * s * G + L
            rows.append(
                (p, s, result.cost.H, (p - 1) * s, result.cost.S,
                 f"{result.total_time:.0f}", f"{formula:.0f}")
            )
    write_table(
        "formula1_mini_bsml",
        "Formula (1) — direct bcast in mini-BSML: p + (p-1)*s*g + l "
        f"(g={G}, l={L})",
        ("p", "s", "H meas", "(p-1)s", "S", "total meas", "formula"),
        rows,
        footer=(
            "H and S match the formula exactly; the measured total differs "
            "only in the constant of the O(p) local-work term (the "
            "interpreter charges ~4 ops per message evaluation)."
        ),
    )
    params = BspParams(p=8, g=G, l=L)
    benchmark(lambda: run_source("bcast 0 (mkpar (fun i -> i))", params))


def test_formula1_python_bsml_exact(benchmark):
    rows = []
    for p in P_SWEEP:
        params = BspParams(p=p, g=G, l=L)
        ctx = Bsml(params)
        vector = ctx.mkpar(lambda i: 7 if i == 0 else None)
        ctx.reset_cost()
        bcast_direct(ctx, 0, vector)
        measured = ctx.total_time()
        predicted = cost_bcast_direct(params, 1)
        assert measured == pytest.approx(predicted), p
        rows.append((p, f"{measured:.0f}", f"{predicted:.0f}", "exact"))
    write_table(
        "formula1_python_bsml",
        f"Formula (1) — Python BSMLlib bcast_direct, s=1 (g={G}, l={L})",
        ("p", "measured", "closed form", "match"),
        rows,
    )
    params = BspParams(p=8, g=G, l=L)

    def run_once():
        ctx = Bsml(params)
        vector = ctx.mkpar(lambda i: 7 if i == 0 else None)
        bcast_direct(ctx, 0, vector)
        return ctx.total_time()

    benchmark(run_once)


def test_formula1_linearity_in_s(benchmark):
    """Communication cost scales linearly with the payload size."""
    params = BspParams(p=4, g=1.0, l=0.0)
    measurements = {}
    for s in (1, 10, 100, 1000):
        ctx = Bsml(params)
        payload = list(range(s - 1)) if s > 1 else 0  # s words incl. framing
        vector = ctx.mkpar(lambda i: payload if i == 0 else None)
        ctx.reset_cost()
        bcast_direct(ctx, 0, vector)
        measurements[s] = ctx.cost().H
    assert measurements[10] == 10 * measurements[1]
    assert measurements[1000] == 100 * measurements[10]

    def once():
        ctx = Bsml(params)
        vector = ctx.mkpar(lambda i: list(range(99)) if i == 0 else None)
        bcast_direct(ctx, 0, vector)

    benchmark(once)
