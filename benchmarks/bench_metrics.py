"""Benchmark — the metrics layer's disabled overhead.

The metrics registry (``repro.obs.metrics``) aggregates through a
module-global trace sink, so when metrics are **off** the machine must
pay nothing beyond the tracer's existing one-truthiness-test guard: no
sink installed means ``is_tracing()`` is still false and every span site
short-circuits exactly as before the metrics layer existed.

The guard holds that promise: a superstep workload with metrics disabled
(the default state) must cost at most ``MAX_OVERHEAD`` of the same
workload with the instrumentation sites stubbed out entirely.

A third, informational measurement runs with ``metrics.enable()`` — that
path pays for record construction plus one histogram update per span
(it is opt-in precisely because it is not free), so it is reported but
not guarded.

The regenerated table lands in ``benchmarks/results/metrics.txt``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from functools import partial

from repro import obs
from repro.bsp import executor as executor_mod
from repro.bsp import machine as machine_mod
from repro.bsp.machine import BspMachine
from repro.bsp.params import BspParams
from repro.obs import metrics

from _util import write_table

PARAMS = BspParams(p=4, g=2.0, l=50.0)

#: Supersteps (each: one compute phase + one exchange) per measurement.
REPS = 1000

#: Best-of-N wall-clock measurements (minimum filters scheduler noise).
#: Modes are measured interleaved within each repeat so slow drift in
#: the environment lands on every mode equally.
REPEATS = 9

#: The guard: metrics disabled must cost at most this factor of the
#: machine with the instrumentation sites removed.
MAX_OVERHEAD = 1.05


def _unit_task(i):
    return i * i, 1.0


TASKS = [partial(_unit_task, i) for i in range(PARAMS.p)]
SENT = [[0, 1, 0, 0], [0, 0, 1, 0], [0, 0, 0, 1], [1, 0, 0, 0]]
PAYLOADS = {(0, 1): "a", (1, 2): "b", (2, 3): "c", (3, 0): "d"}


class _ObsStub:
    """The tracer's surface with every site compiled down to nothing —
    the machine as it was before the observability layers existed."""

    MACHINE_TRACK = obs.MACHINE_TRACK
    INFERENCE_TRACK = obs.INFERENCE_TRACK

    @staticmethod
    def process_track(proc):
        return f"proc {proc}"

    @staticmethod
    def is_tracing():
        return False

    @staticmethod
    def record(*args, **kwargs):
        pass

    @staticmethod
    def event(*args, **kwargs):
        pass

    @staticmethod
    @contextmanager
    def span(*args, **kwargs):
        yield None


@contextmanager
def _instrumentation_removed():
    """Swap the machine/executor layers' ``obs`` binding for the stub."""
    originals = (machine_mod.obs, executor_mod.obs)
    machine_mod.obs = executor_mod.obs = _ObsStub
    try:
        yield
    finally:
        machine_mod.obs, executor_mod.obs = originals


@contextmanager
def _metrics_on():
    metrics.enable()
    try:
        yield
    finally:
        metrics.disable()


def _drive(machine: BspMachine):
    values = None
    for _ in range(REPS):
        values = machine.run_superstep(TASKS)
        machine.exchange(SENT, payloads=dict(PAYLOADS), label="bench")
    return values


def _measure_once() -> float:
    machine = BspMachine(PARAMS)
    start = time.perf_counter()
    _drive(machine)
    return time.perf_counter() - start


def _measure_interleaved() -> dict:
    """Best-of-``REPEATS`` per mode, measured round-robin."""
    best = {"stubbed": float("inf"), "disabled": float("inf"), "enabled": float("inf")}
    for _ in range(REPEATS):
        with _instrumentation_removed():
            best["stubbed"] = min(best["stubbed"], _measure_once())
        best["disabled"] = min(best["disabled"], _measure_once())
        with _metrics_on():
            best["enabled"] = min(best["enabled"], _measure_once())
    return best


def test_disabled_metrics_are_free(benchmark):
    assert not metrics.is_enabled(), "metrics must start disabled"

    # Correctness first: neither the stub nor live metrics changes
    # anything observable about the machine itself.
    with _instrumentation_removed():
        stub_machine = BspMachine(PARAMS)
        stub_values = _drive(stub_machine)
    plain_machine = BspMachine(PARAMS)
    plain_values = _drive(plain_machine)
    metrics.global_registry().reset()
    metered_machine = BspMachine(PARAMS)
    with _metrics_on():
        metered_values = _drive(metered_machine)
    assert stub_values == plain_values == metered_values == [0, 1, 4, 9]
    assert stub_machine.cost() == plain_machine.cost() == metered_machine.cost()
    # and the metered run actually fed the registry
    assert metrics.SUPERSTEPS_TOTAL.value() == REPS
    assert metrics.SUPERSTEP_SECONDS.count(phase="exchange") == REPS
    metrics.global_registry().reset()

    timings = _measure_interleaved()
    stubbed_s = timings["stubbed"]
    disabled_s = timings["disabled"]
    enabled_s = timings["enabled"]
    metrics.global_registry().reset()
    ratio = disabled_s / stubbed_s
    enabled_ratio = enabled_s / stubbed_s

    write_table(
        "metrics",
        f"Metrics overhead — {REPS} supersteps (compute + exchange), "
        f"p={PARAMS.p}, best of {REPEATS}",
        ("machine", "total (ms)", "vs no layer", "verdict"),
        [
            (
                "instrumentation stubbed out",
                f"{stubbed_s * 1e3:.1f}",
                "1.00x",
                "reference",
            ),
            (
                "metrics disabled (default)",
                f"{disabled_s * 1e3:.1f}",
                f"{ratio:.2f}x",
                "within guard" if ratio <= MAX_OVERHEAD else "OVER BUDGET",
            ),
            (
                "metrics enabled (sink + histograms)",
                f"{enabled_s * 1e3:.1f}",
                f"{enabled_ratio:.2f}x",
                "informational",
            ),
        ],
        footer="Guard: with metrics disabled the instrumentation must "
        f"cost <= {MAX_OVERHEAD:.2f}x the machine with the sites removed "
        "entirely (no sink installed, so span sites short-circuit on one "
        "truthiness test).  Enabled metrics pay for record construction "
        "plus one streaming-histogram update per span and are opt-in.",
    )

    assert ratio <= MAX_OVERHEAD, (
        f"disabled-metrics overhead {ratio:.3f}x exceeds the "
        f"{MAX_OVERHEAD:.2f}x budget ({disabled_s * 1e3:.2f} ms vs "
        f"{stubbed_s * 1e3:.2f} ms over {REPS} supersteps)"
    )

    benchmark(lambda: _drive(BspMachine(PARAMS)))
