"""E15 — ablation: direct vs two-phase broadcast, and both scans.

The cost algebra predicts crossovers:

* direct bcast ``(p-1)s*g + l`` beats two-phase ``~2s*g(p-1)/p + 2l``
  while ``l`` dominates; two-phase wins once ``s*g`` dominates;
* the log-scan ``log2(p)(s*g + l)`` beats the direct (total-exchange)
  scan ``(p-1)s*g + l`` for large ``p`` and moderate ``l``, and loses on
  high-latency machines with small ``p``.

This bench regenerates both crossover tables and asserts the winners
match the model's prediction on every grid point.
"""

from __future__ import annotations

import math

from repro.bsp.params import BspParams
from repro.bsml.predictions import crossover_predicted_scan
from repro.bsml.primitives import Bsml
from repro.bsml.stdlib import (
    bcast_direct,
    bcast_two_phase,
    scan,
    scan_direct,
)

from _util import write_table


def _measure_broadcasts(params, s):
    data = list(range(s))
    direct_ctx = Bsml(params)
    vector = direct_ctx.mkpar(lambda i: data if i == 0 else None)
    direct_ctx.reset_cost()
    bcast_direct(direct_ctx, 0, vector)
    direct = direct_ctx.total_time()

    two_ctx = Bsml(params)
    vector2 = two_ctx.mkpar(lambda i: data if i == 0 else None)
    two_ctx.reset_cost()
    bcast_two_phase(two_ctx, 0, vector2)
    return direct, two_ctx.total_time()


def test_broadcast_crossover(benchmark):
    rows = []
    for l in (50.0, 5000.0):
        params = BspParams(p=8, g=4.0, l=l)
        for s in (8, 64, 512, 4096):
            direct, two_phase = _measure_broadcasts(params, s)
            winner = "two-phase" if two_phase < direct else "direct"
            # The model's prediction (framing ignored): two-phase wins iff
            # the saved traffic outweighs the extra barrier.
            saved_traffic = (8 - 1) * s * params.g * (1 - 2 / 8)
            predicted = "two-phase" if saved_traffic > params.l else "direct"
            rows.append(
                (f"{l:.0f}", s, f"{direct:.0f}", f"{two_phase:.0f}",
                 winner, predicted)
            )
            assert winner == predicted, (l, s)
    write_table(
        "ablation_broadcast",
        "Ablation — direct vs two-phase broadcast (p=8, g=4)",
        ("l", "s", "direct", "two-phase", "winner", "model predicts"),
        rows,
    )
    params = BspParams(p=8, g=4.0, l=50.0)
    benchmark(lambda: _measure_broadcasts(params, 64))


def _measure_scans(params):
    log_ctx = Bsml(params)
    vector = log_ctx.mkpar(lambda i: i)
    log_ctx.reset_cost()
    scan(log_ctx, lambda a, b: a + b, vector)
    log_time = log_ctx.total_time()

    direct_ctx = Bsml(params)
    vector2 = direct_ctx.mkpar(lambda i: i)
    direct_ctx.reset_cost()
    scan_direct(direct_ctx, lambda a, b: a + b, vector2)
    return log_time, direct_ctx.total_time()


def test_scan_crossover(benchmark):
    rows = []
    matches = 0
    cases = 0
    for p in (2, 4, 8, 16, 32):
        for l in (10.0, 200.0, 4000.0):
            params = BspParams(p=p, g=2.0, l=l)
            log_time, direct_time = _measure_scans(params)
            winner = "log" if log_time < direct_time else "direct"
            predicted = crossover_predicted_scan(params.g, params.l, p, 1)
            cases += 1
            matches += winner == predicted
            rows.append(
                (p, f"{l:.0f}", f"{log_time:.0f}", f"{direct_time:.0f}",
                 winner, predicted)
            )
    write_table(
        "ablation_scan",
        "Ablation — log-step scan vs one-superstep (total exchange) scan "
        "(g=2, s=1)",
        ("p", "l", "log scan", "direct scan", "winner", "model predicts"),
        rows,
        footer=f"model agreement: {matches}/{cases} grid points "
        "(the model ignores the O(p) local term, which only matters "
        "at the boundary).",
    )
    # The pure-communication model must agree away from the boundary.
    assert matches >= cases - 3
    params = BspParams(p=16, g=2.0, l=200.0)
    benchmark(lambda: _measure_scans(params))
