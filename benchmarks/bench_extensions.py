"""E18 — the section 6 extensions: sums, tuples, references.

The paper's conclusion sketches three extensions; this bench regenerates
a verdict table showing that each preserves the core guarantee (no
nesting can hide through the new constructs), demonstrates the
replicated-reference coherence problem the paper describes, and times the
extended constructs.
"""

from __future__ import annotations

import pytest

from repro.core.errors import NestingError
from repro.core.infer import infer
from repro.core.types import render_type
from repro.lang.parser import parse_expression as parse
from repro.semantics.bigstep import run
from repro.semantics.errors import ReplicaDivergenceError
from repro.semantics.smallstep import evaluate

from _util import write_table

CASES = [
    # (label, program, static verdict, note)
    ("sum round-trip",
     "case inl 3 of inl x -> x + 1 | inr b -> if b then 1 else 0",
     "accept", "int"),
    ("sum over vectors",
     "mkpar (fun i -> if i = 0 then inl i else inr true)",
     "accept", "(int, bool) sum par"),
    ("vector hidden in scrutinee",
     "case inl (mkpar (fun i -> i)) of inl x -> 1 | inr y -> 2",
     "reject", "-"),
    ("vector injected under mkpar",
     "mkpar (fun i -> inl (mkpar (fun j -> j)))",
     "reject", "-"),
    ("tuple with a vector",
     "(1, true, mkpar (fun i -> i))",
     "accept", "int * bool * int par"),
    ("vector in tuple under mkpar",
     "mkpar (fun i -> (1, 2, mkpar (fun j -> j)))",
     "reject", "-"),
    ("reference counter",
     "let r = ref 0 in r := !r + 1 ; !r",
     "accept", "int"),
    ("reference to a vector",
     "ref (mkpar (fun i -> i))",
     "reject", "-"),
    ("vector of references",
     "mkpar (fun i -> ref i)",
     "accept", "int ref par"),
]


def _verdict(source):
    try:
        ct = infer(parse(source))
        return "accept", render_type(ct.type)
    except NestingError:
        return "reject", "-"


def test_extension_verdicts(benchmark):
    rows = []
    for label, source, expected, expected_type in CASES:
        verdict, ty = _verdict(source)
        assert verdict == expected, label
        assert ty == expected_type, label
        rows.append((label, verdict, ty))
    write_table(
        "extensions_verdicts",
        "Section 6 extensions — sums, tuples, references: the no-nesting "
        "guarantee extends to every new construct",
        ("program", "verdict", "type"),
        rows,
    )
    benchmark(lambda: _verdict(CASES[0][1]))


def test_replica_divergence_scenario(benchmark):
    """The imperative coherence problem: statically accepted (no effect
    typing — the paper's open problem), dynamically detected."""
    source = "let r = ref 0 in fst (mkpar (fun i -> r := i ; i), !r)"
    ct = infer(parse(source))  # accepted!
    assert render_type(ct.type) == "int par"
    with pytest.raises(ReplicaDivergenceError):
        run(parse(source), 3)

    coherent = "let r = ref 0 in fst (mkpar (fun i -> r := 7 ; i), !r)"
    run(parse(coherent), 3)  # same-value assignments stay coherent

    write_table(
        "extensions_divergence",
        "Imperative extension — the section 6 replicated-reference problem",
        ("program", "static", "dynamic"),
        [
            (source, "accept (int par)", "ReplicaDivergenceError"),
            (coherent, "accept (int par)", "runs (replicas coherent)"),
        ],
        footer="Static acceptance of the first program is the gap the "
        "paper's planned effect typing closes; this reproduction "
        "detects the incoherence at the global dereference.",
    )

    def detect():
        try:
            run(parse(source), 3)
            return False
        except ReplicaDivergenceError:
            return True

    assert benchmark(detect)


def test_extended_constructs_performance(benchmark):
    """Throughput of sums + references through the big-step engine."""
    source = """
        let acc = ref 0 in
        let step = fun n ->
            case (if n mod 3 = 0 then inl n else inr (n * 2)) of
              inl triple -> (acc := !acc + triple ; !acc)
            | inr double -> double in
        let loop = fix (fun loop -> fun n ->
            if n = 0 then !acc else (let x = step n in loop (n - 1))) in
        loop 200
    """
    expr = parse(source)
    result = benchmark(lambda: run(expr, 1))
    assert result == sum(n for n in range(1, 201) if n % 3 == 0)
