"""Benchmark — the fault-injection layer's disarmed overhead.

The fault layer (``repro.bsp.faults``) promises to be free when it is
not in use: a machine with **no plan armed** must run supersteps and
exchanges at the same speed as before the layer existed, and even an
**armed all-zero-rate plan** (the transactional bookkeeping is live, but
no fault ever fires) must stay within 5% of the unarmed machine.  This
bench asserts that guard and records the measurements; it also
re-asserts the layer's correctness claim by checking that the armed
zero-rate machine produces bit-identical values and costs.

The regenerated table lands in ``benchmarks/results/faults.txt``.
"""

from __future__ import annotations

import time
from functools import partial

from repro.bsp.faults import FaultPlan, RetryPolicy
from repro.bsp.machine import BspMachine
from repro.bsp.params import BspParams

from _util import write_table

PARAMS = BspParams(p=4, g=2.0, l=50.0)

#: Supersteps (each: one compute phase + one exchange) per measurement.
REPS = 300

#: Best-of-N wall-clock measurements (minimum filters scheduler noise).
REPEATS = 7

#: The disarmed-overhead guard: armed-with-zero-rates must cost at most
#: this factor of the unarmed machine.
MAX_OVERHEAD = 1.05


def _unit_task(i):
    return i * i, 1.0


TASKS = [partial(_unit_task, i) for i in range(PARAMS.p)]
SENT = [[0, 1, 0, 0], [0, 0, 1, 0], [0, 0, 0, 1], [1, 0, 0, 0]]
PAYLOADS = {(0, 1): "a", (1, 2): "b", (2, 3): "c", (3, 0): "d"}


def _build(armed: bool) -> BspMachine:
    if armed:
        return BspMachine(
            PARAMS, faults=FaultPlan(seed=0), retry=RetryPolicy(max_attempts=3)
        )
    return BspMachine(PARAMS)


def _drive(machine: BspMachine):
    values = None
    for _ in range(REPS):
        values = machine.run_superstep(TASKS)
        machine.exchange(SENT, payloads=dict(PAYLOADS), label="bench")
    return values


def _best_of(armed: bool) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        machine = _build(armed)
        start = time.perf_counter()
        _drive(machine)
        best = min(best, time.perf_counter() - start)
    return best


def test_disarmed_fault_layer_is_free(benchmark):
    # Correctness first: an armed zero-rate plan changes nothing.
    clean, armed = _build(armed=False), _build(armed=True)
    assert _drive(clean) == _drive(armed) == [0, 1, 4, 9]
    assert clean.cost() == armed.cost()

    unarmed_s = _best_of(armed=False)
    armed_s = _best_of(armed=True)
    ratio = armed_s / unarmed_s

    write_table(
        "faults",
        f"Fault layer overhead — {REPS} supersteps (compute + exchange), "
        f"p={PARAMS.p}, best of {REPEATS}",
        ("machine", "total (ms)", "vs unarmed", "verdict"),
        [
            ("no plan armed", f"{unarmed_s * 1e3:.1f}", "1.00x", "reference"),
            (
                "zero-rate plan + retry policy armed",
                f"{armed_s * 1e3:.1f}",
                f"{ratio:.2f}x",
                "within guard" if ratio <= MAX_OVERHEAD else "OVER BUDGET",
            ),
        ],
        footer="Guard: an armed plan whose rates are all zero must cost "
        f"<= {MAX_OVERHEAD:.2f}x the unarmed machine — the transactional "
        "bookkeeping may not tax fault-free runs.",
    )

    assert ratio <= MAX_OVERHEAD, (
        f"disarmed fault-layer overhead {ratio:.3f}x exceeds the "
        f"{MAX_OVERHEAD:.2f}x budget ({armed_s * 1e3:.2f} ms vs "
        f"{unarmed_s * 1e3:.2f} ms over {REPS} supersteps)"
    )

    benchmark(lambda: _drive(_build(armed=True)))
