"""E12 — Theorem 1 (typing safety), validated empirically at scale.

Generates hundreds of random well-typed programs, runs each through the
small-step machine at several machine sizes, and retypes the resulting
values — the mechanized statement of the theorem.  Benchmarks the
accept-evaluate-retype pipeline.
"""

from __future__ import annotations

from repro.core.infer import infer
from repro.core.types import render_type
from repro.core.unify import unifiable
from repro.lang.ast import is_value_syntax
from repro.semantics.smallstep import evaluate, step_count
from repro.testing.generators import ProgramGenerator

from _util import write_table

RUNS = 300
P_VALUES = (1, 2, 4)


def test_theorem1_sweep(benchmark):
    checked = 0
    stuck = 0
    type_mismatch = 0
    total_steps = 0
    sizes = []
    for seed in range(RUNS):
        expr = ProgramGenerator(seed=seed, p_hint=1).expression(depth=4)
        sizes.append(expr.size())
        ct = infer(expr)
        for p in P_VALUES:
            try:
                value = evaluate(expr, p)
            except Exception:
                stuck += 1
                continue
            assert is_value_syntax(value)
            if not unifiable(infer(value).type, ct.type):
                type_mismatch += 1
            total_steps += step_count(expr, p)
            checked += 1
    assert stuck == 0
    assert type_mismatch == 0
    write_table(
        "theorem1_safety",
        "Theorem 1 (typing safety) — empirical validation",
        ("quantity", "value"),
        [
            ("random well-typed programs", RUNS),
            ("machine sizes per program", len(P_VALUES)),
            ("program/machine runs checked", checked),
            ("mean AST size", f"{sum(sizes) / len(sizes):.1f} nodes"),
            ("total reduction steps", total_steps),
            ("stuck normal forms (progress violations)", stuck),
            ("value retype failures (preservation violations)", type_mismatch),
        ],
        footer="0 violations: every accepted program reduced to a value of "
        "its inferred type, at every machine size.",
    )

    def pipeline():
        expr = ProgramGenerator(seed=1, p_hint=2).expression(depth=4)
        ct = infer(expr)
        value = evaluate(expr, 2)
        assert unifiable(infer(value).type, ct.type)

    benchmark(pipeline)


def test_rejection_is_fast(benchmark):
    """Rejection must not be slower than acceptance (the solver fails
    fast on the unsatisfiable constraint)."""
    from repro.core.errors import NestingError

    generator = ProgramGenerator(seed=5, p_hint=2)
    good = generator.expression(depth=4)
    bad = generator.mutate_to_nesting(depth=4)

    def classify():
        infer(good)
        try:
            infer(bad)
        except NestingError:
            return True
        return False

    assert benchmark(classify)
