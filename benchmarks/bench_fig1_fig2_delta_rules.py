"""E1 + E2 — Figures 1 and 2: the delta-rules, fired and timed.

Regenerates a table with one row per delta-rule showing a concrete redex
and its reduct, at several machine sizes for the parallel rules, and
benchmarks a representative local and parallel reduction.
"""

from __future__ import annotations

import pytest

from repro.lang.ast import Const, Fun, Pair, ParVec, Prim, Var, App, NC
from repro.lang.parser import parse_expression as parse
from repro.lang.pretty import pretty
from repro.semantics.delta import delta_local
from repro.semantics.delta_parallel import delta_apply, delta_mkpar, delta_put
from repro.semantics.smallstep import evaluate, step

from _util import write_table

LOCAL_CASES = [
    ("+", "1 + 2", "3"),
    ("-", "5 - 9", "-4"),
    ("*", "6 * 7", "42"),
    ("/", "7 / 2", "3"),
    ("mod", "7 mod 2", "1"),
    ("=", "1 = 1", "true"),
    ("<", "2 < 1", "false"),
    ("&&", "true && false", "false"),
    ("not", "not true", "false"),
    ("fst", "fst (1, 2)", "1"),
    ("snd", "snd (1, 2)", "2"),
    ("isnc/other", "isnc 3", "false"),
    ("isnc/nc", "isnc (nc ())", "true"),
    ("fix", "(fix (fun f -> fun n -> if n = 0 then 1 else n * f (n - 1))) 4", "24"),
]


def test_figure1_local_delta_rules(benchmark):
    rows = []
    for rule, source, expected in LOCAL_CASES:
        value = evaluate(parse(source), 2)
        assert pretty(value) == expected, rule
        rows.append((rule, source, pretty(value)))
    write_table(
        "fig1_local_delta_rules",
        "Figure 1 — local delta-rules (each fired on a concrete redex)",
        ("rule", "redex", "value"),
        rows,
    )
    redex = App(Prim("+"), Pair(Const(1), Const(2)))
    benchmark(lambda: delta_local("+", redex.arg))


@pytest.mark.parametrize("p", [1, 2, 4, 8])
def test_figure2_parallel_delta_rules(benchmark, p):
    rows = []
    mk = delta_mkpar(Fun("x", Var("x")), p)
    assert mk == ParVec(tuple(Const(i) for i in range(p)))
    rows.append(("mkpar", f"mkpar (fun x -> x)", pretty(mk)))

    fns = ParVec(tuple(Fun("x", Const(i)) for i in range(p)))
    args = ParVec(tuple(Const(0) for _ in range(p)))
    ap = delta_apply(Pair(fns, args), p)
    assert ap == ParVec(tuple(Const(i) for i in range(p)))
    rows.append(("apply", "apply (<fun x -> i>, <0>)", pretty(ap)))

    senders = ParVec(tuple(Fun("dst", Const(j)) for j in range(p)))
    put_result = delta_put(senders, p)
    assert put_result is not None and put_result.width == p
    rows.append(("put", "put <fun dst -> j>", f"<{p} let-chains (Fig 2 shape)>"))

    ifat_source = (
        "if mkpar (fun i -> i = 0) at 0 then mkpar (fun i -> 1)"
        " else mkpar (fun i -> 0)"
    )
    ifat_value = evaluate(parse(ifat_source), p)
    assert ifat_value == ParVec(tuple(Const(1) for _ in range(p)))
    rows.append(("ifat", ifat_source[:40] + "...", pretty(ifat_value)))

    write_table(
        f"fig2_parallel_delta_rules_p{p}",
        f"Figure 2 — parallel delta-rules at p = {p}",
        ("rule", "redex", "value"),
        rows,
    )
    benchmark(lambda: delta_mkpar(Fun("x", Var("x")), p))


def test_put_rule_matches_figure2_shape(benchmark):
    """The put reduct is the exact let-chain + if-cascade of Figure 2."""
    p = 2
    senders = ParVec((Fun("dst", Const(10)), Fun("dst", Const(20))))
    reduct = delta_put(senders, p)
    text = pretty(reduct)
    # let-chain of one message per sender, then the delivered function.
    assert text.count("let") == p * p
    assert "nc ()" in text
    assert "if x = 0 then" in text
    benchmark(lambda: delta_put(senders, p))


def test_one_full_reduction_sequence(benchmark):
    """Benchmark the small-step machine end to end on a parallel program."""
    expr = parse("apply (mkpar (fun i -> fun x -> x + i), mkpar (fun i -> i))")

    def reduce():
        return evaluate(expr, 4)

    value = benchmark(reduce)
    assert value == ParVec((Const(0), Const(2), Const(4), Const(6)))
