"""Macro benchmark: the full pipeline over the shipped program suite.

Parse -> infer (with the prelude environment) -> evaluate with cost
accounting, over every ``programs/*.bsml`` file — the end-to-end path a
user of the library exercises.  Also reports per-program superstep
structure as a summary table.
"""

from __future__ import annotations

from pathlib import Path

from repro import run_program, typecheck
from repro.lang.parser import parse_program

from _util import write_table

PROGRAMS_DIR = Path(__file__).resolve().parents[1] / "programs"


def _sources():
    return {
        path.name: path.read_text() for path in sorted(PROGRAMS_DIR.glob("*.bsml"))
    }


def test_program_suite_summary(benchmark):
    rows = []
    for name, source in _sources().items():
        expr = parse_program(source, filename=name)
        ct = typecheck(expr)
        result = run_program(expr, p=8, g=2.0, l=100.0)
        rows.append(
            (
                name,
                str(ct.type),
                result.cost.S,
                result.cost.H,
                f"{result.total_time:.0f}",
            )
        )
    write_table(
        "pipeline_program_suite",
        "The shipped mini-BSML programs: type, supersteps, H, total time "
        "(p=8, g=2, l=100)",
        ("program", "type", "S", "H", "total"),
        rows,
    )
    source = _sources()["odd_even_sort.bsml"]

    def pipeline():
        expr = parse_program(source)
        typecheck(expr)
        return run_program(expr, p=8)

    benchmark(pipeline)


def test_whole_suite_throughput(benchmark):
    sources = _sources()

    def run_all():
        for name, source in sources.items():
            expr = parse_program(source, filename=name)
            typecheck(expr)
            run_program(expr, p=4)

    benchmark.pedantic(run_all, rounds=3, iterations=1)
