"""E16 — ablation: constraint-solving and pruning strategies.

Two design choices from DESIGN.md, measured:

* ``Solve`` via Horn least-model propagation vs complete branching on
  atoms — identical verdicts (tested), very different asymptotics;
* constraint pruning at ``let`` boundaries vs the paper's literal
  accumulate-everything — identical acceptance (tested elsewhere), but
  pruning keeps carried constraints small on let-heavy programs.
"""

from __future__ import annotations

import time

from repro.core.constraints import (
    CLoc,
    FALSE,
    conj,
    imp,
    is_satisfiable,
    is_satisfiable_branching,
)
from repro.core.infer import Inferencer
from repro.core.schemes import TypeEnv
from repro.lang.parser import parse_expression as parse

from _util import write_table


def _chain_constraint(n: int):
    """L(a0) => L(a1) => ... plus a goal on the last atom: n atoms."""
    parts = [imp(CLoc(f"a{i}"), CLoc(f"a{i+1}")) for i in range(n - 1)]
    parts.append(imp(CLoc(f"a{n-1}"), FALSE))
    parts.append(CLoc("a0"))
    return conj(*parts)


def test_horn_vs_branching(benchmark):
    rows = []
    for n in (4, 8, 12, 16, 20):
        constraint = _chain_constraint(n)
        expected = is_satisfiable_branching(constraint)
        assert is_satisfiable(constraint) == expected

        start = time.perf_counter()
        for _ in range(50):
            is_satisfiable(constraint)
        horn_time = (time.perf_counter() - start) / 50

        start = time.perf_counter()
        repeats = 5 if n <= 16 else 1
        for _ in range(repeats):
            is_satisfiable_branching(constraint)
        branch_time = (time.perf_counter() - start) / repeats

        rows.append(
            (n, f"{horn_time * 1e6:.1f}", f"{branch_time * 1e6:.1f}",
             f"{branch_time / horn_time:.1f}x")
        )
    write_table(
        "ablation_solver",
        "Ablation — Solve by Horn propagation vs complete branching "
        "(unsatisfiable implication chains, time in microseconds)",
        ("atoms", "horn (us)", "branching (us)", "slowdown"),
        rows,
        footer="Same verdicts always (property-tested); branching is "
        "exponential on chains, Horn propagation stays linear.",
    )
    constraint = _chain_constraint(12)
    benchmark(lambda: is_satisfiable(constraint))


def _let_tower(n: int) -> str:
    """n nested lets, each binding a small polymorphic function."""
    lines = []
    for i in range(n):
        lines.append(f"let f{i} = fun x -> (x, {i}) in")
    lines.append("f0 true")
    return "\n".join(lines)


def test_pruned_vs_unpruned_inference(benchmark):
    rows = []
    for n in (5, 10, 20, 40):
        expr = parse(_let_tower(n))

        start = time.perf_counter()
        engine = Inferencer(prune=True)
        ct_pruned, _ = engine.infer(TypeEnv.empty(), expr)
        pruned_time = time.perf_counter() - start
        pruned_size = _constraint_size(engine.subst.apply_constrained(ct_pruned))

        start = time.perf_counter()
        engine = Inferencer(prune=False)
        ct_full, _ = engine.infer(TypeEnv.empty(), expr)
        full_time = time.perf_counter() - start
        full_size = _constraint_size(engine.subst.apply_constrained(ct_full))

        rows.append(
            (n, pruned_size, full_size,
             f"{pruned_time * 1e3:.1f}", f"{full_time * 1e3:.1f}")
        )
    write_table(
        "ablation_pruning",
        "Ablation — constraint pruning at let boundaries "
        "(n nested polymorphic lets; constraint size in conjuncts)",
        ("lets", "pruned |C|", "unpruned |C|", "pruned ms", "unpruned ms"),
        rows,
        footer="Acceptance is identical (property-tested); the paper's "
        "literal rules accumulate every sub-derivation's constraints, "
        "pruning projects dead variables out at each let.",
    )
    expr = parse(_let_tower(20))
    benchmark(lambda: Inferencer(prune=True).infer(TypeEnv.empty(), expr))


def _constraint_size(ct) -> int:
    from repro.core.constraints import CAnd

    constraint = ct.constraint
    if isinstance(constraint, CAnd):
        return len(constraint.conjuncts)
    return 1
