"""E5 + E11 — Figure 7: the typing rules, exercised and timed.

Runs inference over a corpus chosen to exercise every rule of Figure 7,
reports the rule coverage, regenerates section 4's "parallel identity"
scheme ``[a -> a / L(a) => False]``, and benchmarks whole-corpus
inference.
"""

from __future__ import annotations

from repro.core.infer import Derivation, infer, infer_scheme, infer_with_derivation
from repro.core.prelude_env import prelude_env
from repro.core.types import render_type
from repro.lang.parser import parse_expression as parse, parse_program
from repro.lang.prelude import with_prelude
from repro.testing.generators import well_typed_corpus

from _util import write_table

#: One witness program per rule of Figure 7.
RULE_WITNESSES = {
    "Var": "let x = 1 in x",
    "Const": "42",
    "Op": "(+)",
    "Fun": "fun x -> x",
    "App": "(fun x -> x) 1",
    "Let": "let y = 2 in y + y",
    "Pair": "(1, true)",
    "Ifthenelse": "if true then 1 else 2",
    "Ifat": "if mkpar (fun i -> true) at 0 then mkpar (fun i -> 1)"
            " else mkpar (fun i -> 2)",
}


def _rules_used(derivation: Derivation) -> set:
    rules = {derivation.rule}
    for premise in derivation.premises:
        rules |= _rules_used(premise)
    return rules


def test_every_rule_of_figure7_fires(benchmark):
    rows = []
    for rule, source in RULE_WITNESSES.items():
        ct, derivation = infer_with_derivation(parse(source))
        assert rule in _rules_used(derivation), rule
        rows.append((rule, source[:48], render_type(ct.type)))
    write_table(
        "fig7_rule_coverage",
        "Figure 7 — every typing rule fired by a witness program",
        ("rule", "witness", "type"),
        rows,
    )
    benchmark(lambda: infer(parse(RULE_WITNESSES["Ifat"])))


def test_section4_parallel_identity(benchmark):
    source = "fun x -> if mkpar (fun i -> true) at 0 then x else x"
    scheme = infer_scheme(parse(source))
    text = str(scheme)
    assert "'a -> 'a" in text
    assert "L('a) => False" in text
    write_table(
        "fig7_parallel_identity",
        "Section 4 — the parallel identity needs a non-basic constraint",
        ("expression", "inferred scheme"),
        [(source, text)],
        footer=(
            "The basic constraints alone would give L('a) => L('a) = True; "
            "the (Ifat) rule's L(tau) => False forbids local instantiation."
        ),
    )
    benchmark(lambda: infer_scheme(parse(source)))


def test_corpus_inference(benchmark):
    env = prelude_env()
    programs = [parse_program(source) for source in well_typed_corpus()]

    def infer_corpus():
        for program in programs:
            infer(program, env)

    benchmark(infer_corpus)


def test_prelude_environment_construction(benchmark):
    """Typing the whole 12-definition prelude from scratch."""
    from repro.core.schemes import TypeEnv, generalize
    from repro.lang.prelude import prelude_asts

    definitions = prelude_asts()

    def build():
        env = TypeEnv.empty()
        for name, body in definitions:
            ct = infer(body, env)
            env = env.extend(name, generalize(ct, env))
        return env

    env = benchmark(build)
    assert env.lookup("scan") is not None
