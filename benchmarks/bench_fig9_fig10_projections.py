"""E7 — Figures 9 and 10: the four projection cases of section 2.1.

Regenerates the accept/accept/accept/reject table (with the Milner
baseline column, which accepts all four), saves the two derivation trees
of the figures, and benchmarks the discriminating instantiation.
"""

from __future__ import annotations

from repro.core.errors import NestingError
from repro.core.infer import infer
from repro.core.judgments import explain
from repro.core.milner import milner_infer
from repro.core.types import render_type
from repro.lang.parser import parse_expression as parse

from _util import save_text, write_table

CASES = [
    ("1: two usual values", "fst (1, 2)", "accept", "int"),
    (
        "2: two parallel values",
        "fst (mkpar (fun i -> i), mkpar (fun i -> i))",
        "accept",
        "int par",
    ),
    (
        "3: parallel and usual (Fig 9)",
        "fst (mkpar (fun i -> i), 1)",
        "accept",
        "int par",
    ),
    (
        "4: usual and parallel (Fig 10)",
        "fst (1, mkpar (fun i -> i))",
        "reject",
        "-",
    ),
]


def _verdict(source):
    try:
        return "accept", render_type(infer(parse(source)).type)
    except NestingError:
        return "reject", "-"


def test_four_projection_cases(benchmark):
    rows = []
    for label, source, expected_verdict, expected_type in CASES:
        verdict, ty = _verdict(source)
        assert verdict == expected_verdict, label
        assert ty == expected_type, label
        milner = render_type(milner_infer(parse(source)))
        rows.append((label, verdict, ty, f"accept ({milner})"))
    write_table(
        "fig9_fig10_projections",
        "Section 2.1 — the four applications of the polymorphic fst",
        ("case", "BSML verdict", "BSML type", "Milner baseline"),
        rows,
        footer=(
            "Case 4's Milner type is int, yet evaluating it requires "
            "evaluating a parallel vector — the instantiation constraint "
            "L(int) => L(int par) = False rejects it (Figure 10)."
        ),
    )
    benchmark(lambda: _verdict("fst (1, mkpar (fun i -> i))"))


def test_figure9_and_figure10_trees(benchmark):
    fig9 = explain(parse("fst (mkpar (fun i -> i), 1)"))
    assert fig9.accepted
    fig10 = explain(parse("fst (1, mkpar (fun i -> i))"))
    assert not fig10.accepted
    from repro.core.latex import explanation_to_latex

    save_text(
        "fig9_latex",
        explanation_to_latex(fig9, standalone=True) + "\n",
    )
    save_text(
        "fig10_latex",
        explanation_to_latex(fig10, standalone=True) + "\n",
    )
    save_text(
        "fig9_fig10_derivations",
        "Figure 9 — typing judgement of the third projection\n\n"
        + fig9.render()
        + "\n\n"
        + "Figure 10 — typing judgement of the fourth projection\n\n"
        + fig10.render()
        + "\n",
    )
    benchmark(lambda: explain(parse("fst (mkpar (fun i -> i), 1)")))


def test_one_fst_serves_every_valid_shape(benchmark):
    """The paper's argument against syntactic global/local separation:
    a single polymorphic fst covers all three valid use sites."""
    source = (
        "let a = fst (1, 2) in"
        " let b = fst (mkpar (fun i -> i), mkpar (fun i -> true)) in"
        " let c = fst (mkpar (fun i -> i), a) in"
        " c"
    )
    ct = benchmark(lambda: infer(parse(source)))
    assert render_type(ct.type) == "int par"
