"""E14 — the BSP cost model of section 2: ``Time(s) = max w + max h*g + l``.

Regenerates the superstep-cost decomposition over a family of h-relations
(1-relations, one-to-all, all-to-one, total exchange) and over
multi-superstep programs, checking the model's algebra holds in the
simulator, and benchmarks a full superstep.
"""

from __future__ import annotations

import pytest

from repro.bsp.machine import BspMachine
from repro.bsp.network import h_relation_of_matrix, one_relation
from repro.bsp.params import BspParams
from repro.bsml.primitives import Bsml
from repro.bsml.stdlib import scan, totex

from _util import write_table

P = 8
PARAMS = BspParams(p=P, g=2.0, l=100.0)


def _patterns():
    one = [[0] * P for _ in range(P)]
    for i in range(P):
        one[i][(i + 1) % P] = 1
    one_to_all = [[0] * P for _ in range(P)]
    for j in range(1, P):
        one_to_all[0][j] = 1
    all_to_one = [[0] * P for _ in range(P)]
    for i in range(1, P):
        all_to_one[i][0] = 1
    total = [[1] * P for _ in range(P)]
    return {
        "1-relation (shift)": (one, 1),
        "one-to-all (bcast)": (one_to_all, P - 1),
        "all-to-one (gather)": (all_to_one, P - 1),
        "total exchange": (total, P - 1),
    }


def test_h_relation_family(benchmark):
    rows = []
    for name, (matrix, expected_h) in _patterns().items():
        relation = h_relation_of_matrix(matrix)
        assert relation.h == expected_h, name
        cost = expected_h * PARAMS.g + PARAMS.l
        rows.append((name, relation.h, f"{cost:.0f}"))
    write_table(
        "bsp_h_relations",
        f"Section 2 — h-relations and their delivery cost h*g + l "
        f"(p={P}, g={PARAMS.g}, l={PARAMS.l})",
        ("pattern", "h", "comm+sync cost"),
        rows,
        footer="h = max_i max(words sent_i, words received_i): one-to-all "
        "and all-to-one cost the same as a full total exchange of "
        "1-word messages — the BSP model's point about balance.",
    )
    matrix = _patterns()["total exchange"][0]
    benchmark(lambda: h_relation_of_matrix(matrix))


def test_superstep_time_formula(benchmark):
    """Time(s) = max_i w_i + max_i h_i * g + l, summed over supersteps."""
    machine = BspMachine(PARAMS)
    machine.local(0, 10)
    machine.local(3, 25)
    machine.exchange(_patterns()["1-relation (shift)"][0])
    machine.replicated(5)
    machine.exchange(_patterns()["total exchange"][0])
    cost = machine.cost()
    expected = (25 + 1 * PARAMS.g + PARAMS.l) + (5 + (P - 1) * PARAMS.g + PARAMS.l)
    assert cost.total(PARAMS) == pytest.approx(expected)
    assert cost.check_decomposition(PARAMS)
    write_table(
        "bsp_superstep_decomposition",
        "Section 2 — a two-superstep program's cost decomposition",
        ("superstep", "max w", "h", "time"),
        [
            (i, step.w_max, step.h, f"{step.time(PARAMS):.0f}")
            for i, step in enumerate(cost.supersteps)
        ],
        footer=f"total = W + H*g + S*l = {cost.total(PARAMS):.0f}",
    )

    def one_superstep():
        m = BspMachine(PARAMS)
        m.replicated(3)
        m.exchange(_patterns()["total exchange"][0])
        return m.total_time()

    benchmark(one_superstep)


def test_superstep_counts_of_stdlib(benchmark):
    """S (number of barriers) for each stdlib operation, vs prediction."""
    import math

    expectations = []
    for p in (2, 4, 8, 16):
        params = BspParams(p=p)
        ctx = Bsml(params)
        vector = ctx.mkpar(lambda i: i)
        ctx.reset_cost()
        totex(ctx, vector)
        s_totex = ctx.cost().S
        ctx2 = Bsml(params)
        vector2 = ctx2.mkpar(lambda i: i)
        ctx2.reset_cost()
        scan(ctx2, lambda a, b: a + b, vector2)
        s_scan = ctx2.cost().S
        assert s_totex == 1
        assert s_scan == math.ceil(math.log2(p))
        expectations.append((p, s_totex, s_scan, math.ceil(math.log2(p))))
    write_table(
        "bsp_superstep_counts",
        "Superstep counts: totex (1) vs log-scan (ceil(log2 p))",
        ("p", "S totex", "S scan", "log2(p)"),
        expectations,
    )

    def run_scan():
        ctx = Bsml(BspParams(p=8))
        scan(ctx, lambda a, b: a + b, ctx.mkpar(lambda i: i))

    benchmark(run_scan)
