"""Guard — the solver memoization layer must actually pay for itself.

The PR that introduced hash-consed type/constraint nodes and the
``lru_cache`` layer over ``solve``/``is_satisfiable``/``is_valid``/
``locality``/``basic_constraint`` claims a >= 2x cold-vs-warm speedup on
solver-heavy workloads.  This bench regenerates that number and *asserts*
it, so a regression (e.g. accidentally keying a cache on un-interned
nodes) fails ``pytest benchmarks/`` instead of silently rotting.

Workload: a mixed corpus of generated constraints (atoms, conjunctions,
implication chains over the locality of random mini-BSML types) solved
repeatedly — the shape ``infer`` produces at instantiation points, where
the same interned constraints recur across let-bound uses.
"""

from __future__ import annotations

import time

from repro import perf
from repro.core.constraints import (
    FALSE,
    CLoc,
    basic_constraint,
    conj,
    imp,
    is_satisfiable,
    is_valid,
    locality,
    solve,
)
from repro.testing.generators import ProgramGenerator

from _util import write_table

#: Passes over the corpus per timing; the first pass after clear_caches()
#: is the cold one, later passes are pure cache hits.
WARM_PASSES = 20

#: Length of the implication chains in the corpus.  Deep enough that the
#: cold pass is dominated by actual solving rather than call overhead —
#: with shallow chains the guard sat within timer noise of 2x, and the
#: memoized ``simplify`` pass (which legitimately speeds the *cold* side
#: up via intra-pass sharing) pushed it under.
CHAIN_LENGTH = 40


def _corpus(seed: int = 7, count: int = 60):
    generator = ProgramGenerator(seed=seed)
    constraints = []
    for index in range(count):
        ty = generator.random_type(parallel=True)
        atom = locality(ty)
        other = locality(generator.random_type(parallel=index % 2 == 0))
        chain = conj(
            *[
                imp(CLoc(f"c{seed}_{i}"), CLoc(f"c{seed}_{i+1}"))
                for i in range(CHAIN_LENGTH)
            ]
        )
        constraints.extend(
            [
                atom,
                basic_constraint(ty),
                conj(atom, other),
                imp(conj(atom, other), basic_constraint(ty)),
                conj(
                    chain,
                    imp(CLoc(f"c{seed}_{CHAIN_LENGTH}"), FALSE),
                    CLoc(f"c{seed}_0"),
                ),
            ]
        )
    return constraints


def _solve_all(constraints) -> None:
    for constraint in constraints:
        solve(constraint)
        is_satisfiable(constraint)
        is_valid(constraint)


def test_warm_cache_at_least_twice_as_fast(benchmark):
    constraints = _corpus()

    perf.clear_caches()
    start = time.perf_counter()
    _solve_all(constraints)
    cold = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(WARM_PASSES):
        _solve_all(constraints)
    warm = (time.perf_counter() - start) / WARM_PASSES

    with perf.collect() as stats:
        _solve_all(constraints)
    hit_rate = stats.hit_rate("constraints.solve")

    write_table(
        "solver_cache_guard",
        "Guard — solver memoization: cold vs warm pass over the "
        f"constraint corpus ({len(constraints)} constraints)",
        ("pass", "time (ms)", "speedup", "solve hit rate"),
        [
            ("cold", f"{cold * 1e3:.2f}", "1.0x", "-"),
            (
                "warm",
                f"{warm * 1e3:.2f}",
                f"{cold / warm:.1f}x",
                f"{hit_rate:.1%}",
            ),
        ],
        footer="Invalidation-free by construction: caches are keyed on "
        "hash-consed immutable nodes.  The guard requires >= 2x.",
    )

    assert hit_rate == 1.0, "warm pass must be served entirely from cache"
    assert cold >= 2 * warm, (
        f"memoization guard: cold {cold * 1e3:.2f} ms vs warm "
        f"{warm * 1e3:.2f} ms is below the required 2x speedup"
    )

    benchmark(lambda: _solve_all(constraints))
