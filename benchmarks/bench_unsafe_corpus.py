"""E10 + E13 — the unsafe corpus: Milner vs the paper's type system.

Regenerates the headline comparison table: every program of section 2.1
(and variations) with three columns — the Milner verdict (accepts all,
with the type it assigns), the BSML verdict (rejects all, with the
failing rule), and the operational outcome of running it anyway.
"""

from __future__ import annotations

from repro.core.errors import NestingError
from repro.core.infer import infer
from repro.core.milner import milner_infer
from repro.core.types import render_type
from repro.lang.parser import parse_program
from repro.lang.prelude import with_prelude
from repro.semantics.errors import EvalError, StuckError
from repro.semantics.smallstep import evaluate
from repro.testing.generators import CORPUS_REJECTED, ProgramGenerator

from _util import write_table


def _bsml_verdict(expr):
    try:
        infer(expr)
        return "ACCEPT (bug!)"
    except NestingError as error:
        return f"reject ({error.rule})"


def _dynamic_outcome(expr):
    try:
        evaluate(expr, 2)
        return "runs; hidden vector materialized"
    except StuckError as error:
        if "dynamic nesting" in error.diagnosis:
            return "stuck: dynamic nesting"
        return "stuck"
    except EvalError:
        return "runtime error"


def test_unsafe_corpus_table(benchmark):
    rows = []
    for source in CORPUS_REJECTED:
        expr = with_prelude(parse_program(source))
        milner = f"accept : {render_type(milner_infer(expr))}"
        bsml = _bsml_verdict(expr)
        assert bsml.startswith("reject"), source
        rows.append((" ".join(source.split())[:58], milner, bsml, _dynamic_outcome(expr)))
    write_table(
        "unsafe_corpus",
        f"Section 2.1 corpus — {len(CORPUS_REJECTED)} unsafe programs: "
        "Milner accepts every one, the constrained system rejects every one",
        ("program", "Milner (baseline)", "BSML system", "if run anyway"),
        rows,
    )
    expr = with_prelude(parse_program(CORPUS_REJECTED[0]))
    benchmark(lambda: _bsml_verdict(expr))


def test_random_nesting_mutants(benchmark):
    """100 generated example1/example2/fst-shaped mutants: Milner accepts
    all, the constrained system rejects all."""
    mutants = [
        ProgramGenerator(seed=seed, p_hint=2).mutate_to_nesting(depth=3)
        for seed in range(100)
    ]
    milner_accepts = 0
    bsml_rejects = 0
    for expr in mutants:
        try:
            milner_infer(expr)
            milner_accepts += 1
        except Exception:
            pass
        try:
            infer(expr)
        except NestingError:
            bsml_rejects += 1
    assert milner_accepts == 100
    assert bsml_rejects == 100
    write_table(
        "unsafe_mutants",
        "Random nesting mutants (n = 100)",
        ("system", "accepts", "rejects"),
        [
            ("Milner / classic ML", milner_accepts, 100 - milner_accepts),
            ("BSML constrained system", 100 - bsml_rejects, bsml_rejects),
        ],
    )

    def reject_one():
        try:
            infer(mutants[0])
            return False
        except NestingError:
            return True

    assert benchmark(reject_one)
