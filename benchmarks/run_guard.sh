#!/bin/sh
# CI guard: the tier-1 test suite plus the speedup benches.
#
# Run from the repository root:
#
#     sh benchmarks/run_guard.sh
#
# Fails (non-zero exit) if any tier-1 test fails, if the memoization
# layer no longer delivers the required >= 2x cold-vs-warm speedup, if
# the compiled evaluation engine no longer delivers the required >= 2x
# warm speedup over the tree evaluator, if the vectorized engine no
# longer delivers >= 2x over compiled in aggregate at p >= 16 on the
# costed scaling suite (all with bit-identical BspCost tables and
# trace signatures), if the union-find inference engine no longer
# delivers >= 5x over the substitution engine at AST size >= 500 (with
# bit-identical types, constraints, derivations and errors), or if
# disabled metrics cost more than 1.05x of the uninstrumented machine.
set -eu

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q

echo "== solver-cache speedup guard =="
python -m pytest benchmarks/bench_solver_cache.py -q --benchmark-disable

echo "== compiled + vectorized engine speedup guards =="
python -m pytest benchmarks/bench_evaluators.py -q --benchmark-disable

echo "== union-find inference engine speedup guard =="
python -m pytest benchmarks/bench_infer_engines.py -q --benchmark-disable

echo "== disabled-metrics overhead guard =="
python -m pytest benchmarks/bench_metrics.py -q --benchmark-disable
